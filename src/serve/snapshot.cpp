#include "serve/snapshot.hpp"

#include <utility>

#include "common/error.hpp"
#include "uri/uri.hpp"
#include "xlink/model.hpp"

namespace navsep::serve {

namespace {

const std::vector<SnapshotArc> kNoArcs{};

}  // namespace

SiteSnapshot::SiteSnapshot(const site::VirtualSite& site,
                           const xlink::TraversalGraph& graph,
                           std::string base, std::uint64_t epoch)
    : epoch_(epoch), base_(std::move(base)) {
  if (!base_.empty() && base_.back() != '/') base_ += '/';
  normalized_base_ = uri::normalize(uri::parse(base_)).to_string();
  for (auto& [path, body] : site.shared_artifacts()) {
    files_.emplace(path, std::move(body));
  }
  // Materialize arcs by value, bucketed by (already normalized) source
  // URI — the graph's own index order is linkbase document order, which
  // we preserve per bucket.
  for (const std::string& from : graph.resource_uris()) {
    std::vector<const xlink::Arc*> outgoing = graph.outgoing(from);
    if (outgoing.empty()) continue;
    std::vector<SnapshotArc> bucket;
    bucket.reserve(outgoing.size());
    for (const xlink::Arc* arc : outgoing) {
      SnapshotArc snap;
      snap.from = xlink::normalize_ref(arc->from.uri);
      snap.to = xlink::normalize_ref(arc->to.uri);
      snap.arcrole = arc->arcrole;
      snap.title = arc->title;
      snap.traversable = xlink::is_traversable(*arc);
      bucket.push_back(std::move(snap));
    }
    arcs_by_from_.emplace(xlink::normalize_ref(from), std::move(bucket));
  }
}

std::vector<std::string> SiteSnapshot::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

std::shared_ptr<const std::string> SiteSnapshot::body(
    std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

site::Response SiteSnapshot::respond(std::string_view uri_or_path,
                                     std::string* resolved_path) const {
  std::optional<std::string> path =
      site::site_path_under(uri_or_path, normalized_base_);
  if (!path) return site::Response{404, "", nullptr};
  auto it = files_.find(*path);
  if (it == files_.end()) return site::Response{404, "", nullptr};
  if (resolved_path != nullptr) *resolved_path = *path;
  return site::Response{200, std::string(site::content_type_for(*path)),
                        it->second};
}

const std::vector<SnapshotArc>& SiteSnapshot::outgoing(
    std::string_view uri) const {
  std::string absolute = uri.find("://") != std::string_view::npos
                             ? std::string(uri)
                             : base_ + std::string(uri);
  auto it = arcs_by_from_.find(xlink::normalize_ref(absolute));
  return it == arcs_by_from_.end() ? kNoArcs : it->second;
}

const SnapshotArc* SiteSnapshot::outgoing_with_role(
    std::string_view uri, std::string_view role) const {
  for (const SnapshotArc& arc : outgoing(uri)) {
    if (xlink::arcrole_matches(arc.arcrole, role)) return &arc;
  }
  return nullptr;
}

void SnapshotStore::publish(std::shared_ptr<const SiteSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw SemanticError("SnapshotStore::publish: null snapshot");
  }
  const std::uint64_t next = snapshot->epoch();
  if (next <= epoch_.load(std::memory_order_relaxed)) {
    throw SemanticError(
        "SnapshotStore::publish: epoch must advance (publishing " +
        std::to_string(next) + " over " +
        std::to_string(epoch_.load(std::memory_order_relaxed)) + ")");
  }
#if defined(__cpp_lib_atomic_shared_ptr)
  current_.store(std::move(snapshot), std::memory_order_release);
#else
  std::atomic_store_explicit(&current_, std::move(snapshot),
                             std::memory_order_release);
#endif
  // The epoch is published AFTER the snapshot: a cache that reads epoch
  // N is guaranteed current() already returns the epoch-N snapshot (it
  // may even be newer — harmless, the entry just retires one probe
  // early... never late).
  epoch_.store(next, std::memory_order_release);
}

std::shared_ptr<const SiteSnapshot> SnapshotStore::current() const {
#if defined(__cpp_lib_atomic_shared_ptr)
  return current_.load(std::memory_order_acquire);
#else
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
#endif
}

}  // namespace navsep::serve

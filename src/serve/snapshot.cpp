#include "serve/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/linkbase.hpp"
#include "html/html.hpp"
#include "nav/buildgraph.hpp"
#include "uri/uri.hpp"
#include "xlink/model.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace navsep::serve {

namespace {

const std::vector<SnapshotArc> kNoArcs{};

/// Hash of a profile's family-name list (order-sensitive — family order
/// is compose order).
std::uint64_t profile_token(const nav::Profile& profile) {
  std::uint64_t token = 0x70f17e5ull;
  for (const std::string& name : profile.families) {
    token = nav::hash_combine(token, nav::hash_bytes(name));
  }
  return token;
}

/// Slice hash of `path` within one source's per-page table (null table =
/// the source authored no arcs; missing page = empty slice).
std::uint64_t slice_hash_for(const PageSliceHashes* hashes,
                             std::string_view path) {
  if (hashes == nullptr) return kEmptySliceHash;
  auto it = hashes->find(path);
  return it == hashes->end() ? kEmptySliceHash : it->second;
}

/// The woven navigation container's opening tag, byte-exact as the HTML
/// writer emits it (class is its only attribute) — derived from the
/// shared default class so the weave and the splice cannot drift.
const std::string kNavOpen =
    "<div class=\"" + std::string(core::kDefaultNavContainerClass) + "\">";
constexpr std::string_view kDivOpen = "<div";
constexpr std::string_view kDivClose = "</div>";

/// [begin, end) byte range of the woven navigation container inside a
/// serialized page, balancing nested `<div>`s; npos/npos when absent.
std::pair<std::size_t, std::size_t> navigation_block_range(
    const std::string& page) {
  const std::size_t begin = page.find(kNavOpen);
  if (begin == std::string::npos) return {std::string::npos, std::string::npos};
  std::size_t pos = begin + kNavOpen.size();
  std::size_t depth = 1;
  while (depth > 0) {
    const std::size_t open = page.find(kDivOpen, pos);
    const std::size_t close = page.find(kDivClose, pos);
    if (close == std::string::npos) {
      // Unbalanced markup cannot come out of the HTML writer; treat the
      // page as having no spliceable block rather than corrupting it.
      return {std::string::npos, std::string::npos};
    }
    // "</div>" starts with "</", so a "<div" hit is always a genuine
    // nested open, never the close's prefix.
    if (open != std::string::npos && open < close) {
      ++depth;
      pos = open + kDivOpen.size();
    } else {
      --depth;
      pos = close + kDivClose.size();
    }
  }
  return {begin, pos};
}

}  // namespace

std::uint64_t combine_arc_slice(std::uint64_t slice,
                                const core::NavArc& arc) noexcept {
  std::uint64_t a = nav::hash_bytes(arc.from);
  a = nav::hash_combine(a, nav::hash_bytes(arc.to));
  a = nav::hash_combine(a, nav::hash_bytes(arc.role));
  a = nav::hash_combine(a, nav::hash_bytes(arc.title));
  a = nav::hash_combine(a, nav::hash_bytes(arc.context));
  return nav::hash_combine(slice, a);
}

SiteSnapshot::SiteSnapshot(const site::VirtualSite& site,
                           const xlink::TraversalGraph& graph,
                           std::string base, std::uint64_t epoch)
    : SiteSnapshot(site, graph, std::move(base), epoch,
                   SnapshotOverlayInputs{}) {}

SiteSnapshot::SiteSnapshot(const site::VirtualSite& site,
                           const xlink::TraversalGraph& graph,
                           std::string base, std::uint64_t epoch,
                           SnapshotOverlayInputs overlays)
    : epoch_(epoch), base_(std::move(base)) {
  if (!base_.empty() && base_.back() != '/') base_ += '/';
  normalized_base_ = uri::normalize(uri::parse(base_)).to_string();
  for (auto& [path, body] : site.shared_artifacts()) {
    files_.emplace(path, std::move(body));
  }
  // Materialize arcs by value, bucketed by (already normalized) source
  // URI — the graph's own index order is linkbase document order, which
  // we preserve per bucket.
  for (const std::string& from : graph.resource_uris()) {
    std::vector<const xlink::Arc*> outgoing = graph.outgoing(from);
    if (outgoing.empty()) continue;
    std::vector<SnapshotArc> bucket;
    bucket.reserve(outgoing.size());
    for (const xlink::Arc* arc : outgoing) {
      SnapshotArc snap;
      snap.from = xlink::normalize_ref(arc->from.uri);
      snap.to = xlink::normalize_ref(arc->to.uri);
      snap.arcrole = arc->arcrole;
      snap.title = arc->title;
      snap.traversable = xlink::is_traversable(*arc);
      bucket.push_back(std::move(snap));
    }
    arcs_by_from_.emplace(xlink::normalize_ref(from), std::move(bucket));
  }

  init_overlays(std::move(overlays));
}

SiteSnapshot::SiteSnapshot(SnapshotState state)
    : epoch_(state.epoch), base_(std::move(state.base)) {
  if (!base_.empty() && base_.back() != '/') base_ += '/';
  normalized_base_ = uri::normalize(uri::parse(base_)).to_string();
  files_ = std::move(state.files);
  arcs_by_from_ = std::move(state.arcs_by_from);
  init_overlays(std::move(state.overlays));
}

std::shared_ptr<const SourceSliceHashes> SiteSnapshot::derive_slice_hashes(
    const std::vector<core::NavArc>& arcs) {
  auto derived = std::make_shared<SourceSliceHashes>();
  for (const core::NavArc& arc : arcs) {
    auto [it, inserted] = (*derived)[arc.source].emplace(
        core::default_href_for(arc.from), kEmptySliceHash);
    it->second = combine_arc_slice(it->second, arc);
  }
  return derived;
}

void SiteSnapshot::init_overlays(SnapshotOverlayInputs overlays) {
  // Overlay inputs: bucket the combined arc set per (linkbase, page) and
  // resolve each linkbase's content handle — the cache-validity tokens.
  profiles_ = std::move(overlays.profiles);
  structure_source_ = overlays.structure_source;
  route_table_ = std::move(overlays.routes);
  if (overlays.arcs == nullptr) return;
  overlay_arcs_ = std::move(overlays.arcs);
  families_.reserve(overlays.families.size());
  for (SnapshotOverlayInputs::Family& family : overlays.families) {
    families_.push_back(
        FamilySlice{std::move(family.name), family.source, {}, nullptr});
  }
  for (const core::NavArc& arc : *overlay_arcs_) {
    ArcSlice* slice = nullptr;
    if (arc.source == overlays.structure_source) {
      slice = &structure_arcs_by_page_;
    } else {
      auto it = std::find_if(
          families_.begin(), families_.end(),
          [&](const FamilySlice& f) { return f.source == arc.source; });
      if (it == families_.end()) continue;  // unknown source: not servable
      slice = &it->arcs_by_page;
    }
    (*slice)[core::default_href_for(arc.from)].push_back(&arc);
  }

  // Slice hashes: normally threaded from the engine's arc-table rebuild;
  // a snapshot built without them (direct construction, and decoded wire
  // frames — which never ship hashes) derives its own through the same
  // combine_arc_slice fold, so the tables cannot drift.
  slice_hashes_ = overlays.slice_hashes != nullptr
                      ? std::move(overlays.slice_hashes)
                      : derive_slice_hashes(*overlay_arcs_);
  auto find_hashes = [&](std::string_view source) -> const PageSliceHashes* {
    auto it = slice_hashes_->find(source);
    return it == slice_hashes_->end() ? nullptr : &it->second;
  };
  structure_hashes_ = find_hashes(overlays.structure_source);
  for (FamilySlice& family : families_) {
    family.hashes = find_hashes(family.source);
  }
}

std::vector<SnapshotOverlayInputs::Family> SiteSnapshot::overlay_families()
    const {
  std::vector<SnapshotOverlayInputs::Family> out;
  out.reserve(families_.size());
  for (const FamilySlice& family : families_) {
    out.push_back(SnapshotOverlayInputs::Family{family.name, family.source});
  }
  return out;
}

const nav::Profile* SiteSnapshot::find_profile(
    std::string_view name) const noexcept {
  for (const nav::Profile& profile : profiles_) {
    if (profile.name == name) return &profile;
  }
  return nullptr;
}

std::vector<const core::NavArc*> SiteSnapshot::profile_arcs(
    std::string_view path, const nav::Profile& profile) const {
  std::vector<const core::NavArc*> out;
  if (auto it = structure_arcs_by_page_.find(path);
      it != structure_arcs_by_page_.end()) {
    out = it->second;
  }
  for (const std::string& family_name : profile.families) {
    auto family = std::find_if(
        families_.begin(), families_.end(),
        [&](const FamilySlice& f) { return f.name == family_name; });
    if (family != families_.end()) {
      if (auto it = family->arcs_by_page.find(path);
          it != family->arcs_by_page.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
      continue;
    }
    // Not an authored family: a Lazy route program composes exactly like
    // one, from its memoized expansion (the slice outlives the returned
    // pointers — the snapshot pins it in route_slices_).
    if (std::shared_ptr<const RouteSlice> route =
            lazy_route_slice(family_name)) {
      if (auto it = route->arcs_by_page.find(path);
          it != route->arcs_by_page.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
  }
  return out;
}

OverlayValidity SiteSnapshot::overlay_validity(const nav::Profile& profile,
                                               std::string_view path) const {
  OverlayValidity validity;
  validity.base_body = body(path);
  validity.profile_token = profile_token(profile);
  validity.structure_slice = slice_hash_for(structure_hashes_, path);
  if (validity.base_body == nullptr && route_table_ != nullptr) {
    // A Lazy route's linkbase artifact has no stored base bytes; its
    // synthesized content hash stands in for the structure slice
    // (compared by value, so an epoch whose re-expansion produces
    // identical bytes keeps the cached entry alive).
    for (const RouteTable::Entry& entry : route_table_->entries) {
      if (entry.program.compile != nav::RouteCompile::Lazy ||
          entry.source != path) {
        continue;
      }
      if (std::shared_ptr<const RouteSlice> route =
              lazy_route_slice(entry.program.name)) {
        validity.structure_slice = nav::hash_bytes(*route->text);
      }
      break;
    }
  }
  validity.family_slices.reserve(profile.families.size());
  for (const std::string& family_name : profile.families) {
    auto it = std::find_if(
        families_.begin(), families_.end(),
        [&](const FamilySlice& f) { return f.name == family_name; });
    if (it != families_.end()) {
      validity.family_slices.push_back(slice_hash_for(it->hashes, path));
      continue;
    }
    // A Lazy route program's validity is its program token folded with
    // the expansion's per-page slice hash: editing the program retires
    // every entry, a family edit retires only pages whose expanded
    // slice changed (the ISSUE's cache-economics contract).
    if (std::shared_ptr<const RouteSlice> route =
            lazy_route_slice(family_name)) {
      validity.family_slices.push_back(nav::hash_combine(
          route->token, slice_hash_for(&route->hashes, path)));
      continue;
    }
    validity.family_slices.push_back(kUnknownSliceHash);
  }
  return validity;
}

std::shared_ptr<const SiteSnapshot::RouteSlice> SiteSnapshot::lazy_route_slice(
    std::string_view name) const {
  if (route_table_ == nullptr || overlay_arcs_ == nullptr) return nullptr;
  const RouteTable::Entry* entry = nullptr;
  for (const RouteTable::Entry& e : route_table_->entries) {
    if (e.program.compile == nav::RouteCompile::Lazy &&
        e.program.name == name) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) return nullptr;

  {
    std::lock_guard<std::mutex> lock(route_mutex_);
    auto it = route_slices_.find(name);
    if (it != route_slices_.end()) return it->second;
  }

  // Expand outside the lock — a pure function of immutable snapshot
  // state, so racing readers compute identical slices (first insert
  // wins below). Route sources never feed route expansion: programs are
  // defined over the authored navigation, exactly as the engine's AOT
  // path expands them.
  std::vector<std::string> exclude;
  exclude.reserve(route_table_->entries.size());
  for (const RouteTable::Entry& e : route_table_->entries) {
    exclude.push_back(e.source);
  }
  hypermedia::ContextFamily family = nav::route_context_family(
      entry->program.name, nav::parse_route(entry->program.expression),
      *overlay_arcs_, exclude);

  // Author the linkbase through THE context-linkbase producer (the same
  // call the engine's AOT rebuild makes), then round-trip it through the
  // parser like the weave path does — both sides' arc values come from
  // the authored bytes, so they cannot drift.
  core::LinkbaseOptions lb;
  lb.base_uri = base_ + entry->source;
  lb.data_href = [](std::string_view id) {
    return core::default_href_for(id);
  };
  lb.structure_href = [](std::string_view id) {
    return core::default_href_for(id);
  };
  const auto& titles = route_table_->titles;
  std::unique_ptr<xml::Document> doc = core::build_context_linkbase(
      family,
      [&titles](std::string_view id) {
        auto it = titles.find(id);
        return it == titles.end() ? std::string(id) : it->second;
      },
      lb);

  auto slice = std::make_shared<RouteSlice>();
  slice->name = entry->program.name;
  slice->source = entry->source;
  slice->token = nav::route_token(entry->program);
  slice->text =
      std::make_shared<const std::string>(xml::write(*doc, {.pretty = true}));
  std::unique_ptr<xml::Document> parsed = xml::parse(*slice->text);
  xlink::TraversalGraph graph = core::load_linkbase(*parsed);
  slice->arcs = core::combined_nav_arcs({{entry->source, &graph}});
  for (const core::NavArc& arc : slice->arcs) {
    std::string page = core::default_href_for(arc.from);
    slice->arcs_by_page[page].push_back(&arc);
    auto [it, inserted] = slice->hashes.emplace(std::move(page),
                                                kEmptySliceHash);
    it->second = combine_arc_slice(it->second, arc);
  }

  std::lock_guard<std::mutex> lock(route_mutex_);
  auto [it, inserted] = route_slices_.emplace(std::string(name), slice);
  return it->second;
}

std::shared_ptr<const std::string> SiteSnapshot::overlay_body(
    std::string_view path, const std::shared_ptr<const std::string>& base,
    const nav::Profile& profile) const {
  const std::vector<const core::NavArc*> arcs = profile_arcs(path, profile);

  // Late-compose the navigation block through the same renderer the
  // weave uses — identical code path, identical bytes.
  xml::Element scratch{xml::QName("body")};
  core::NavigationAspectOptions options;
  options.woven_context_families = profile.families;
  const xml::Element* block = arcs.empty()
                                  ? nullptr
                                  : core::render_navigation(
                                        scratch, /*page_instance=*/path,
                                        /*current_context=*/"", arcs, options);
  if (block == nullptr) {
    // No arc applies under this profile; a full per-profile weave would
    // have produced no block either (base pages with a block always have
    // structure arcs, which every profile sees).
    return base;
  }
  const auto [begin, end] = navigation_block_range(*base);

  // The block sits two levels deep (html > body > div); serialize it at
  // that depth so the splice is byte-exact.
  const std::string fragment = html::write_at_depth(*block, 2);
  std::string spliced;
  if (begin != std::string::npos) {
    spliced.reserve(base->size() - (end - begin) + fragment.size());
    spliced.append(*base, 0, begin);
    spliced.append(fragment);
    spliced.append(*base, end, base->size() - end);
  } else {
    // The base page wove no block (no context-free arcs leave it): the
    // full weave appends it as the last child of <body>.
    static constexpr std::string_view kBodyClose = "\n  </body>";
    const std::size_t at = base->rfind(kBodyClose);
    if (at == std::string::npos) return base;  // not a page shape we weave
    spliced.reserve(base->size() + fragment.size() + 5);
    spliced.append(*base, 0, at);
    spliced.append("\n    ");
    spliced.append(fragment);
    spliced.append(*base, at, base->size() - at);
  }
  if (spliced == *base) return base;  // e.g. an empty-family profile
  return std::make_shared<const std::string>(std::move(spliced));
}

site::Response SiteSnapshot::respond_as(std::string_view profile_name,
                                        std::string_view uri_or_path,
                                        std::string* resolved_path) const {
  const nav::Profile* profile = find_profile(profile_name);
  if (profile == nullptr) {
    throw SemanticError("SiteSnapshot::respond_as: unknown profile '" +
                        std::string(profile_name) +
                        "' (register it on the engine first)");
  }
  return respond_as(*profile, uri_or_path, resolved_path);
}

site::Response SiteSnapshot::respond_as(const nav::Profile& profile,
                                        std::string_view uri_or_path,
                                        std::string* resolved_path) const {
  if (!overlays_enabled()) return respond(uri_or_path, resolved_path);

  // One resolution path for plain and profile-scoped serving: delegate,
  // then apply the profile view on top of the resolved response.
  std::string path;
  site::Response r = respond(uri_or_path, &path);
  if (!r.ok()) {
    // A Lazy route's linkbase is not a stored artifact — it exists only
    // for profiles that include the route, synthesized on first touch
    // (the AOT build for such a profile would have authored it).
    std::optional<std::string> missing =
        site::site_path_under(uri_or_path, normalized_base_);
    if (route_table_ != nullptr && missing.has_value()) {
      for (const RouteTable::Entry& entry : route_table_->entries) {
        if (entry.source != *missing ||
            entry.program.compile != nav::RouteCompile::Lazy) {
          continue;
        }
        if (std::find(profile.families.begin(), profile.families.end(),
                      entry.program.name) == profile.families.end()) {
          break;  // excluded: stays 404, like an excluded family linkbase
        }
        if (std::shared_ptr<const RouteSlice> route =
                lazy_route_slice(entry.program.name)) {
          if (resolved_path != nullptr) *resolved_path = *missing;
          return site::Response{
              200, std::string(site::content_type_for(*missing)),
              route->text};
        }
      }
    }
    return r;
  }

  // A contextual linkbase outside the profile is not part of the
  // profile's site: a full build over only its families would never
  // author it.
  for (const FamilySlice& family : families_) {
    if (family.source != path) continue;
    if (std::find(profile.families.begin(), profile.families.end(),
                  family.name) == profile.families.end()) {
      return site::Response{404, "", nullptr};
    }
  }

  if (resolved_path != nullptr) *resolved_path = path;
  if (r.content_type == "text/html") {
    r.body = overlay_body(path, r.body, profile);
  }
  return r;
}

std::vector<std::string> SiteSnapshot::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

std::shared_ptr<const std::string> SiteSnapshot::body(
    std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

site::Response SiteSnapshot::respond(std::string_view uri_or_path,
                                     std::string* resolved_path) const {
  std::optional<std::string> path =
      site::site_path_under(uri_or_path, normalized_base_);
  if (!path) return site::Response{404, "", nullptr};
  auto it = files_.find(*path);
  if (it == files_.end()) return site::Response{404, "", nullptr};
  if (resolved_path != nullptr) *resolved_path = *path;
  return site::Response{200, std::string(site::content_type_for(*path)),
                        it->second};
}

const std::vector<SnapshotArc>& SiteSnapshot::outgoing(
    std::string_view uri) const {
  std::string absolute = uri.find("://") != std::string_view::npos
                             ? std::string(uri)
                             : base_ + std::string(uri);
  auto it = arcs_by_from_.find(xlink::normalize_ref(absolute));
  return it == arcs_by_from_.end() ? kNoArcs : it->second;
}

const SnapshotArc* SiteSnapshot::outgoing_with_role(
    std::string_view uri, std::string_view role) const {
  for (const SnapshotArc& arc : outgoing(uri)) {
    if (xlink::arcrole_matches(arc.arcrole, role)) return &arc;
  }
  return nullptr;
}

void SnapshotStore::publish(std::shared_ptr<const SiteSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw SemanticError("SnapshotStore::publish: null snapshot");
  }
  const std::uint64_t next = snapshot->epoch();
  if (next <= epoch_.load(std::memory_order_relaxed)) {
    throw SemanticError(
        "SnapshotStore::publish: epoch must advance (publishing " +
        std::to_string(next) + " over " +
        std::to_string(epoch_.load(std::memory_order_relaxed)) + ")");
  }
#if NAVSEP_ATOMIC_SHARED_PTR
  current_.store(std::move(snapshot), std::memory_order_release);
#else
  std::atomic_store_explicit(&current_, std::move(snapshot),
                             std::memory_order_release);
#endif
  // The epoch is published AFTER the snapshot: a cache that reads epoch
  // N is guaranteed current() already returns the epoch-N snapshot (it
  // may even be newer — harmless, the entry just retires one probe
  // early... never late).
  epoch_.store(next, std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const SiteSnapshot> SnapshotStore::current() const {
#if NAVSEP_ATOMIC_SHARED_PTR
  return current_.load(std::memory_order_acquire);
#else
  return std::atomic_load_explicit(&current_, std::memory_order_acquire);
#endif
}

}  // namespace navsep::serve

// Multi-session traffic driver over the concurrent serving runtime.
//
// The ROADMAP's "heavy traffic" has to come from somewhere: Workload
// spawns K threads, each simulating one user session with a distinct
// behavior model over the published site snapshots:
//
//   RandomSurfer    — follows a uniformly random traversable arc leaving
//                     the current page (the classic surfer model);
//   GuidedTour      — enters a navigational context and walks it with
//                     next/prev (mostly forward, occasionally back);
//   ContextSwitcher — hops between context families with through():
//                     reach Guernica by author, re-reach it by movement,
//                     continue there (the paper's §2 scenario, at load);
//   Kiosk           — a personalized profile restricted to a fixed
//                     playlist of pages (tours suppressed, cf.
//                     core::UserProfile::suppress_tours), cycling them.
//
// Every page fetch goes through a ConcurrentServer and is timed into a
// log-scaled latency histogram; sessions tolerate mid-run site mutations
// (a 404 after an epoch change re-seeds the session from the current
// snapshot) — concurrent linkbase edits are part of the workload, not a
// failure.
//
// Thread-safety contract: reader sessions touch ONLY the ConcurrentServer,
// the snapshots it serves, and the engine's navigational model / context
// families (which mutations never rebuild). They never touch the
// engine's weaver, server, site, or structure — those belong to the
// single writer thread.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/concurrent_server.hpp"

namespace navsep::nav {
class Engine;
}

namespace navsep::serve {

enum class Behavior {
  RandomSurfer,
  GuidedTour,
  ContextSwitcher,
  Kiosk,
  /// Profile-scoped traffic: each session pins one registered
  /// nav::Profile (round-robin over the snapshot's profile table) and
  /// fetches every page through ConcurrentServer::get(uri, profile),
  /// walking the structure's arcs plus the profile families' tour arcs —
  /// the overlay cache under multi-audience load. Falls back to
  /// RandomSurfer when no profile is registered.
  ProfileMix,
};

[[nodiscard]] std::string_view to_string(Behavior b) noexcept;

/// Log₂-bucketed latency counts: bucket i holds samples in
/// [2^i, 2^(i+1)) nanoseconds. Cheap enough to sit on the per-request
/// path, mergeable across threads, quantile-answerable to within a
/// factor of 2 — all a traffic sweep needs.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t ns) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] std::uint64_t max_ns() const noexcept { return max_ns_; }
  [[nodiscard]] double mean_ns() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(total_ns_) /
                             static_cast<double>(count_);
  }

  /// The q-quantile sample (q in [0,1]), interpolated linearly within
  /// its log2 bucket's [2^i, 2^(i+1)) range by rank and clamped to the
  /// observed maximum — not the bucket's upper bound, which would
  /// overstate a quantile landing just past a boundary by up to 2x.
  /// 0 when empty.
  [[nodiscard]] std::uint64_t quantile_ns(double q) const noexcept;

  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return counts_;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

struct WorkloadOptions {
  /// Concurrent sessions (threads). Each runs its own Rng stream.
  std::size_t threads = 4;

  /// Navigation steps per session; every step issues at least one GET.
  std::size_t steps_per_session = 256;

  /// Behaviors assigned round-robin to sessions. Empty = all four.
  std::vector<Behavior> behaviors;

  std::uint64_t seed = 42;

  /// Navigation trace capture (obs/trace.hpp). Off by default; when
  /// enabled each session records every `trace.sample_every`-th step
  /// into its own single-writer ring, folded into
  /// WorkloadResult::traces after the sessions join.
  obs::TraceConfig trace;

  /// Optional metrics registry. When set, the run exports its
  /// counters, per-behavior latency histograms
  /// (`workload.latency.<behavior>`), and trace tallies into it after
  /// the sessions join — nothing touches the registry on the request
  /// path.
  std::shared_ptr<obs::Registry> telemetry;
};

struct BehaviorTally {
  Behavior behavior = Behavior::RandomSurfer;
  std::size_t sessions = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;  ///< 404s (expected under concurrent edits)
  LatencyHistogram latency;  ///< this behavior's sessions only
};

struct WorkloadResult {
  std::size_t sessions = 0;
  std::size_t steps = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double seconds = 0.0;
  double throughput_rps = 0.0;  ///< requests / seconds
  LatencyHistogram latency;
  ConcurrentServer::Stats server;  ///< sampled after the run
  std::vector<BehaviorTally> by_behavior;
  obs::TraceAggregate traces;  ///< empty unless options.trace.enabled
};

/// The session pool. Construct it BEFORE any concurrent writer starts
/// mutating the engine (construction reads the access structure once to
/// seed session entry points; after that, only writer-immutable engine
/// state is touched) — then run() may overlap freely with engine
/// mutations on another thread.
class Workload {
 public:
  explicit Workload(const nav::Engine& engine);

  /// Drive `options.threads` sessions over a private ConcurrentServer.
  [[nodiscard]] WorkloadResult run(const WorkloadOptions& options = {});

  /// Drive the sessions over a caller-owned server (sharing its cache
  /// and counters with other traffic).
  [[nodiscard]] WorkloadResult run(ConcurrentServer& server,
                                   const WorkloadOptions& options = {});

 private:
  const nav::Engine* engine_;
  std::string entry_path_;               ///< served path of the entry page
  std::vector<std::string> seed_nodes_;  ///< member node ids at capture time
};

}  // namespace navsep::serve

#include "serve/concurrent_server.hpp"

#include <functional>
#include <utility>

#include "common/error.hpp"

namespace navsep::serve {

ConcurrentServer::ConcurrentServer(const SnapshotStore& store,
                                   std::size_t shards)
    : store_(&store), n_shards_(shards == 0 ? 1 : shards) {
  std::shared_ptr<const SiteSnapshot> current = store.current();
  if (current == nullptr) {
    throw SemanticError(
        "ConcurrentServer: the snapshot store has no published snapshot "
        "yet (serve the engine first)");
  }
  base_ = current->base();
  shards_ = std::make_unique<Shard[]>(n_shards_);
  overlay_shards_ = std::make_unique<OverlayShard[]>(n_shards_);
}

ConcurrentServer::Shard& ConcurrentServer::shard_for(
    std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % n_shards_];
}

ConcurrentServer::OverlayShard& ConcurrentServer::overlay_shard_for(
    std::string_view key) const {
  return overlay_shards_[std::hash<std::string_view>{}(key) % n_shards_];
}

site::Response ConcurrentServer::get(std::string_view uri_or_path) const {
  // Same cache-key policy as HypermediaServer: fragment stripped, 404s
  // never cached.
  std::string key(uri_or_path.substr(0, uri_or_path.find('#')));
  Shard& shard = shard_for(key);
  shard.requests.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t current_epoch = store_->epoch();
  bool was_stale = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.cache.find(key); it != shard.cache.end()) {
      if (it->second.epoch == current_epoch) {
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second.response;
      }
      was_stale = true;  // refilled below, outside the lock
    }
  }

  // Miss or stale: resolve against the snapshot that is current NOW.
  // (It may be newer than current_epoch read above — the entry is then
  // tagged with the newer epoch it was actually resolved from.)
  std::shared_ptr<const SiteSnapshot> snap = store_->current();
  site::Response r = snap->respond(key);
  shard.resolves.fetch_add(1, std::memory_order_relaxed);
  if (!r.ok()) {
    shard.not_found.fetch_add(1, std::memory_order_relaxed);
    if (was_stale) {
      // The path existed in an older epoch but is gone now: retire the
      // stale entry rather than serving it forever.
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cache.erase(key);
    }
    return r;
  }
  if (was_stale) shard.stale_refills.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cache[std::move(key)] = Entry{r, snap->epoch()};
  return r;
}

site::Response ConcurrentServer::get(std::string_view uri_or_path,
                                     std::string_view profile) const {
  // Overlay keys are (profile, fragment-stripped request); profile names
  // cannot contain '\n' (enforced at registration), so the join is
  // unambiguous.
  std::string request(uri_or_path.substr(0, uri_or_path.find('#')));
  std::string key = std::string(profile) + '\n' + request;
  OverlayShard& shard = overlay_shard_for(key);
  shard.requests.fetch_add(1, std::memory_order_relaxed);

  // Acquire the snapshot FIRST: the entry must be validated against the
  // same site state a refill would be composed from.
  std::shared_ptr<const SiteSnapshot> snap = store_->current();
  const nav::Profile* resolved = snap->find_profile(profile);
  if (resolved == nullptr) {
    throw SemanticError("ConcurrentServer: unknown profile '" +
                        std::string(profile) +
                        "' (register it on the engine first)");
  }

  // Copy the entry out under the lock; validate OUTSIDE it — the
  // validity probe does snapshot lookups and allocates, and holding the
  // shard mutex across that would serialize every request hashing here.
  bool had_entry = false;
  OverlayEntry cached;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.cache.find(key); it != shard.cache.end()) {
      cached = it->second;
      had_entry = true;
    }
  }
  OverlayValidity checked;  // current validity for the cached entry's path
  if (had_entry) {
    checked = snap->overlay_validity(*resolved, cached.path);
    if (checked.same_content(cached.validity)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return cached.response;
    }
    // Invalidated: re-render below.
  }

  std::string path;
  site::Response r = snap->respond_as(*resolved, request, &path);
  if (!r.ok()) {
    shard.not_found.fetch_add(1, std::memory_order_relaxed);
    if (had_entry) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cache.erase(key);
    }
    return r;
  }
  shard.renders.fetch_add(1, std::memory_order_relaxed);
  if (had_entry) {
    shard.stale_renders.fetch_add(1, std::memory_order_relaxed);
  }
  // The stale path already computed this entry's validity (requests
  // almost always resolve to the same site path as before).
  OverlayEntry entry{r, path,
                     had_entry && cached.path == path
                         ? std::move(checked)
                         : snap->overlay_validity(*resolved, path)};
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.cache[std::move(key)] = std::move(entry);
  return r;
}

ConcurrentServer::Stats ConcurrentServer::stats() const {
  Stats s;
  for (std::size_t i = 0; i < n_shards_; ++i) {
    const Shard& shard = shards_[i];
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      s.cached_entries += shard.cache.size();
    }
    // hits/resolves before requests: per shard, requests >= hits +
    // resolves stays true in the sample.
    s.cache_hits += shard.hits.load(std::memory_order_relaxed);
    s.snapshot_resolves += shard.resolves.load(std::memory_order_relaxed);
    s.stale_refills += shard.stale_refills.load(std::memory_order_relaxed);
    s.not_found += shard.not_found.load(std::memory_order_relaxed);
    s.requests += shard.requests.load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < n_shards_; ++i) {
    const OverlayShard& shard = overlay_shards_[i];
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      s.overlay_entries += shard.cache.size();
    }
    s.overlay_hits += shard.hits.load(std::memory_order_relaxed);
    s.overlay_renders += shard.renders.load(std::memory_order_relaxed);
    s.overlay_stale_renders +=
        shard.stale_renders.load(std::memory_order_relaxed);
    s.overlay_not_found += shard.not_found.load(std::memory_order_relaxed);
    s.overlay_requests += shard.requests.load(std::memory_order_relaxed);
  }
  s.epoch = store_->epoch();
  return s;
}

}  // namespace navsep::serve

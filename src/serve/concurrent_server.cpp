#include "serve/concurrent_server.hpp"

#include <functional>
#include <utility>

#include "common/error.hpp"

namespace navsep::serve {

namespace {

/// What an entry is charged against the byte cap: its response body
/// (the dominant term; keys, paths, and validity tokens are not).
template <typename V>
std::size_t entry_bytes(const V& value) {
  return value.response.body == nullptr ? 0 : value.response.body->size();
}

}  // namespace

template <typename V>
bool ConcurrentServer::Shard<V>::lookup(const std::string& key, V& out) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(std::string_view(key));
  if (it == cache.end()) return false;
  // Touch: survival under a cap is decided by recency of use.
  recency.splice(recency.begin(), recency, it->second.pos);
  out = it->second.value;
  return true;
}

template <typename V>
void ConcurrentServer::Shard<V>::store(std::string key, V value,
                                       std::size_t cap,
                                       std::size_t byte_cap) {
  if (cap == 0 || byte_cap == 0) {
    return;  // pass-through: nothing retained, nothing counted
  }
  const std::size_t new_bytes = entry_bytes(value);
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = cache.find(std::string_view(key)); it != cache.end()) {
    // Refresh in place (e.g. a stale refill): neither an insertion nor
    // an eviction in the residency ledger — but the byte ledger moves
    // by the size difference, and a grown entry can push the shard over
    // its byte cap (handled by the shared eviction loop below).
    resident_bytes -= entry_bytes(it->second.value);
    resident_bytes += new_bytes;
    it->second.value = std::move(value);
    recency.splice(recency.begin(), recency, it->second.pos);
  } else {
    resident_bytes += new_bytes;
    recency.push_front(std::move(key));
    // The map key views the list node's string; list nodes are stable
    // across splices, so the view lives exactly as long as the slot.
    cache.emplace(std::string_view(recency.front()),
                  Slot{std::move(value), recency.begin()});
    ++inserted;
  }
  if (new_bytes > byte_cap) {
    // The entry just stored busts the byte budget ALL ON ITS OWN. The
    // LRU loop below evicts from the tail, but no amount of tail
    // eviction can bring the shard under cap while this entry sits at
    // the recency front — it would drain every colder (but cacheable)
    // entry for nothing, then evict this one anyway. Evict it directly
    // and leave the rest of the shard alone.
    auto front = recency.begin();
    auto front_it = cache.find(std::string_view(*front));
    resident_bytes -= new_bytes;
    cache.erase(front_it);  // before the node dies
    recency.erase(front);
    ++evicted;
  }
  while ((cache.size() > cap || resident_bytes > byte_cap) &&
         !cache.empty()) {
    auto victim = std::prev(recency.end());
    auto victim_it = cache.find(std::string_view(*victim));
    resident_bytes -= entry_bytes(victim_it->second.value);
    cache.erase(victim_it);  // before the node dies
    recency.erase(victim);
    ++evicted;
  }
}

template <typename V>
bool ConcurrentServer::Shard<V>::store_if_room(std::string key, V value,
                                               std::size_t cap,
                                               std::size_t byte_cap) {
  if (cap == 0 || byte_cap == 0) return false;  // pass-through: never warm
  const std::size_t new_bytes = entry_bytes(value);
  if (new_bytes > byte_cap) return false;  // would self-evict immediately
  std::lock_guard<std::mutex> lock(mutex);
  if (auto it = cache.find(std::string_view(key)); it != cache.end()) {
    // Refresh a (stale) resident entry in place when the size delta
    // fits — its recency position is deliberately NOT touched: a warmed
    // refresh must not outrank entries organic traffic actually used.
    const std::size_t old_bytes = entry_bytes(it->second.value);
    if (resident_bytes - old_bytes + new_bytes > byte_cap) return false;
    resident_bytes -= old_bytes;
    resident_bytes += new_bytes;
    it->second.value = std::move(value);
    return true;
  }
  if (cache.size() >= cap || resident_bytes + new_bytes > byte_cap) {
    return false;  // admission would force an eviction — keep residents
  }
  resident_bytes += new_bytes;
  // The recency TAIL: a predicted-hot entry starts coldest, so if the
  // prediction was wrong it is the first to go, and it can never push
  // out an entry that earned its place through a real request.
  recency.push_back(std::move(key));
  cache.emplace(std::string_view(recency.back()),
                Slot{std::move(value), std::prev(recency.end())});
  ++inserted;
  return true;
}

template <typename V>
bool ConcurrentServer::Shard<V>::drop(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(std::string_view(key));
  if (it == cache.end()) return false;
  auto pos = it->second.pos;
  resident_bytes -= entry_bytes(it->second.value);
  cache.erase(it);  // before the node dies (the key views into it)
  recency.erase(pos);
  ++evicted;
  return true;
}

ConcurrentServer::ConcurrentServer(const SnapshotStore& store,
                                   std::size_t shards, CacheLimits limits)
    : store_(&store), n_shards_(shards == 0 ? 1 : shards), limits_(limits) {
  std::shared_ptr<const SiteSnapshot> current = store.current();
  if (current == nullptr) {
    throw SemanticError(
        "ConcurrentServer: the snapshot store has no published snapshot "
        "yet (serve the engine first)");
  }
  base_ = current->base();
  shards_ = std::make_unique<BaseShard[]>(n_shards_);
  overlay_shards_ = std::make_unique<OverlayShard[]>(n_shards_);
}

ConcurrentServer::BaseShard& ConcurrentServer::shard_for(
    std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % n_shards_];
}

ConcurrentServer::OverlayShard& ConcurrentServer::overlay_shard_for(
    std::string_view key) const {
  return overlay_shards_[std::hash<std::string_view>{}(key) % n_shards_];
}

site::Response ConcurrentServer::get(std::string_view uri_or_path) const {
  // Same cache-key policy as HypermediaServer: fragment stripped, 404s
  // never cached.
  std::string key(uri_or_path.substr(0, uri_or_path.find('#')));
  BaseShard& shard = shard_for(key);
  shard.requests.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t current_epoch = store_->epoch();
  bool was_stale = false;
  Entry cached;
  if (shard.lookup(key, cached)) {
    if (cached.epoch == current_epoch) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return cached.response;
    }
    was_stale = true;  // refilled below, outside the lock
  }

  // Miss or stale: resolve against the snapshot that is current NOW.
  // (It may be newer than current_epoch read above — the entry is then
  // tagged with the newer epoch it was actually resolved from.)
  std::shared_ptr<const SiteSnapshot> snap = store_->current();
  site::Response r = snap->respond(key);
  shard.resolves.fetch_add(1, std::memory_order_relaxed);
  if (!r.ok()) {
    shard.not_found.fetch_add(1, std::memory_order_relaxed);
    if (was_stale) {
      // The path existed in an older epoch but is gone now: retire the
      // stale entry rather than serving it forever.
      (void)shard.drop(key);
    }
    return r;
  }
  if (was_stale) shard.stale_refills.fetch_add(1, std::memory_order_relaxed);
  shard.store(std::move(key), Entry{r, snap->epoch()},
              limits_.base_entries_per_shard, limits_.base_bytes_per_shard);
  return r;
}

site::Response ConcurrentServer::get(std::string_view uri_or_path,
                                     std::string_view profile) const {
  // Overlay keys are (profile, fragment-stripped request); profile names
  // cannot contain '\n' (enforced at registration), so the join is
  // unambiguous.
  std::string request(uri_or_path.substr(0, uri_or_path.find('#')));
  std::string key = std::string(profile) + '\n' + request;
  OverlayShard& shard = overlay_shard_for(key);
  shard.requests.fetch_add(1, std::memory_order_relaxed);

  // Acquire the snapshot FIRST: the entry must be validated against the
  // same site state a refill would be composed from.
  std::shared_ptr<const SiteSnapshot> snap = store_->current();
  const nav::Profile* resolved = snap->find_profile(profile);
  if (resolved == nullptr) {
    throw SemanticError("ConcurrentServer: unknown profile '" +
                        std::string(profile) +
                        "' (register it on the engine first)");
  }

  // Copy the entry out under the lock; validate OUTSIDE it — the
  // validity probe does snapshot lookups and allocates, and holding the
  // shard mutex across that would serialize every request hashing here.
  OverlayEntry cached;
  const bool had_entry = shard.lookup(key, cached);
  OverlayValidity checked;  // current validity for the cached entry's path
  if (had_entry) {
    checked = snap->overlay_validity(*resolved, cached.path);
    if (checked.same_content(cached.validity)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      return cached.response;
    }
    // Invalidated: re-render below.
  }

  std::string path;
  site::Response r = snap->respond_as(*resolved, request, &path);
  if (!r.ok()) {
    shard.not_found.fetch_add(1, std::memory_order_relaxed);
    if (had_entry) (void)shard.drop(key);
    return r;
  }
  shard.resolves.fetch_add(1, std::memory_order_relaxed);
  if (had_entry) {
    shard.stale_refills.fetch_add(1, std::memory_order_relaxed);
  }
  // The stale path already computed this entry's validity (requests
  // almost always resolve to the same site path as before).
  OverlayEntry entry{r, path,
                     had_entry && cached.path == path
                         ? std::move(checked)
                         : snap->overlay_validity(*resolved, path)};
  shard.store(std::move(key), std::move(entry),
              limits_.overlay_entries_per_shard,
              limits_.overlay_bytes_per_shard);
  return r;
}

ConcurrentServer::WarmOutcome ConcurrentServer::warm(
    std::string_view uri_or_path, std::string_view profile) const {
  std::string request(uri_or_path.substr(0, uri_or_path.find('#')));
  std::shared_ptr<const SiteSnapshot> snap = store_->current();

  if (profile.empty()) {
    // Base layer: epoch-validated, so "already hot" means an entry
    // resolved against the snapshot that is current right now.
    BaseShard& shard = shard_for(request);
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto it = shard.cache.find(std::string_view(request));
      if (it != shard.cache.end() &&
          it->second.value.epoch == snap->epoch()) {
        return WarmOutcome::AlreadyHot;
      }
    }
    site::Response r = snap->respond(request);
    if (!r.ok()) return WarmOutcome::NotFound;
    const std::uint64_t epoch = snap->epoch();
    return shard.store_if_room(std::move(request), Entry{std::move(r), epoch},
                               limits_.base_entries_per_shard,
                               limits_.base_bytes_per_shard)
               ? WarmOutcome::Warmed
               : WarmOutcome::NoRoom;
  }

  const nav::Profile* resolved = snap->find_profile(profile);
  if (resolved == nullptr) {
    // Advisory, not an error: the popularity feed may name a profile
    // that has since been retired.
    return WarmOutcome::NotFound;
  }
  std::string key = std::string(profile) + '\n' + request;
  OverlayShard& shard = overlay_shard_for(key);
  OverlayEntry cached;
  bool had_entry = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.cache.find(std::string_view(key));
    if (it != shard.cache.end()) {
      had_entry = true;
      cached = it->second.value;
    }
  }
  OverlayValidity checked;
  if (had_entry) {
    checked = snap->overlay_validity(*resolved, cached.path);
    if (checked.same_content(cached.validity)) return WarmOutcome::AlreadyHot;
  }
  std::string path;
  site::Response r = snap->respond_as(*resolved, request, &path);
  if (!r.ok()) return WarmOutcome::NotFound;
  OverlayEntry entry{std::move(r), path,
                     had_entry && cached.path == path
                         ? std::move(checked)
                         : snap->overlay_validity(*resolved, path)};
  return shard.store_if_room(std::move(key), std::move(entry),
                             limits_.overlay_entries_per_shard,
                             limits_.overlay_bytes_per_shard)
             ? WarmOutcome::Warmed
             : WarmOutcome::NoRoom;
}

namespace {

/// Aggregate one layer's shard array into its symmetric LayerStats.
template <typename ShardT>
ConcurrentServer::LayerStats aggregate_layer(const ShardT* shards,
                                             std::size_t n,
                                             std::size_t entry_cap,
                                             std::size_t byte_cap) {
  ConcurrentServer::LayerStats s;
  s.entry_cap_per_shard = entry_cap;
  s.byte_cap_per_shard = byte_cap;
  for (std::size_t i = 0; i < n; ++i) {
    const ShardT& shard = shards[i];
    {
      // One lock per shard samples the residency ledger coherently:
      // inserted == entries + evicted holds in the aggregate too.
      std::lock_guard<std::mutex> lock(shard.mutex);
      s.entries += shard.cache.size();
      s.inserted += shard.inserted;
      s.evicted += shard.evicted;
      s.resident_bytes += shard.resident_bytes;
    }
    // hits/resolves before requests: per shard, requests >= hits +
    // resolves stays true in the sample.
    s.hits += shard.hits.load(std::memory_order_relaxed);
    s.resolves += shard.resolves.load(std::memory_order_relaxed);
    s.stale_refills += shard.stale_refills.load(std::memory_order_relaxed);
    s.not_found += shard.not_found.load(std::memory_order_relaxed);
    s.requests += shard.requests.load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace

ConcurrentServer::UnifiedStats ConcurrentServer::unified_stats() const {
  UnifiedStats s;
  s.base = aggregate_layer(shards_.get(), n_shards_,
                           limits_.base_entries_per_shard,
                           limits_.base_bytes_per_shard);
  s.overlay = aggregate_layer(overlay_shards_.get(), n_shards_,
                              limits_.overlay_entries_per_shard,
                              limits_.overlay_bytes_per_shard);
  s.epoch = store_->epoch();
  return s;
}

ConcurrentServer::Stats ConcurrentServer::stats() const {
  const UnifiedStats u = unified_stats();
  Stats s;
  s.requests = u.base.requests;
  s.cache_hits = u.base.hits;
  s.snapshot_resolves = u.base.resolves;
  s.stale_refills = u.base.stale_refills;
  s.not_found = u.base.not_found;
  s.cached_entries = u.base.entries;
  s.cache_inserted = u.base.inserted;
  s.cache_evicted = u.base.evicted;
  s.cached_bytes = u.base.resident_bytes;
  s.epoch = u.epoch;
  s.overlay_requests = u.overlay.requests;
  s.overlay_hits = u.overlay.hits;
  s.overlay_renders = u.overlay.resolves;
  s.overlay_stale_renders = u.overlay.stale_refills;
  s.overlay_not_found = u.overlay.not_found;
  s.overlay_entries = u.overlay.entries;
  s.overlay_inserted = u.overlay.inserted;
  s.overlay_evicted = u.overlay.evicted;
  s.overlay_bytes = u.overlay.resident_bytes;
  s.base_cap_per_shard = u.base.entry_cap_per_shard;
  s.overlay_cap_per_shard = u.overlay.entry_cap_per_shard;
  s.base_byte_cap_per_shard = u.base.byte_cap_per_shard;
  s.overlay_byte_cap_per_shard = u.overlay.byte_cap_per_shard;
  return s;
}

obs::SamplerHandle ConcurrentServer::register_metrics(
    std::shared_ptr<obs::Registry> registry, std::string prefix) const {
  // The sampler captures the registry as a raw pointer on purpose: a
  // shared_ptr capture would make the registry own a closure owning the
  // registry. The SamplerHandle contract already forces the caller to
  // drop the handle before the registry, which bounds the pointer's use.
  obs::Registry* reg = registry.get();
  return reg->add_sampler([this, reg, prefix = std::move(prefix)] {
    const UnifiedStats u = unified_stats();
    const auto layer = [&](const std::string& name, const LayerStats& s) {
      const std::string p = prefix + '.' + name + '.';
      const auto g = [&](const char* field, std::size_t v) {
        reg->gauge(p + field).set(static_cast<std::int64_t>(v));
      };
      g("requests", s.requests);
      g("hits", s.hits);
      g("resolves", s.resolves);
      g("stale_refills", s.stale_refills);
      g("not_found", s.not_found);
      g("entries", s.entries);
      g("inserted", s.inserted);
      g("evicted", s.evicted);
      g("resident_bytes", s.resident_bytes);
    };
    layer("base", u.base);
    layer("overlay", u.overlay);
    reg->gauge(prefix + ".epoch").set(static_cast<std::int64_t>(u.epoch));
  });
}

}  // namespace navsep::serve

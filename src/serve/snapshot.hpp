// Epoch-published site snapshots — the read side of concurrent serving.
//
// The paper's asymmetry is that navigation can be re-authored without
// touching page content; the serving runtime mirrors it: writers
// (nav::Engine mutations) produce a NEW immutable SiteSnapshot and
// publish it atomically, readers acquire whichever snapshot is current
// and keep it alive by refcount for as long as they read. Nobody blocks:
// a reader mid-request on epoch N is untouched by the publication of
// N+1; the last reader to drop N frees it (RCU with shared_ptr as the
// grace period).
//
// A snapshot is fully self-contained: it shares the artifact bytes with
// the VirtualSite it was taken from (cheap — refcount bumps, no copies)
// and materializes the traversal graph's arcs as owned strings, so no
// pointer in a snapshot reaches into engine state a writer might rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "site/server.hpp"
#include "site/virtual_site.hpp"
#include "xlink/traversal.hpp"

namespace navsep::serve {

/// One navigation arc of a snapshot, materialized by value (no pointers
/// into linkbase DOMs — those are writer-owned and rebuilt under the
/// readers' feet). URIs are normalized and absolute.
struct SnapshotArc {
  std::string from;
  std::string to;
  std::string arcrole;  // e.g. "nav:next"
  std::string title;
  bool traversable = true;  // false for show=none / actuate=none arcs
};

/// An immutable, refcounted view of one published site state. Never
/// mutated after construction — every member function is safe to call
/// from any number of threads.
class SiteSnapshot {
 public:
  /// Capture `site` + `graph` as published epoch `epoch` under `base`
  /// (slash-terminated). Artifact bytes are shared, arcs are copied out
  /// by value.
  SiteSnapshot(const site::VirtualSite& site, const xlink::TraversalGraph& graph,
               std::string base, std::uint64_t epoch);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::string& base() const noexcept { return base_; }

  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }
  [[nodiscard]] bool contains(std::string_view path) const {
    return files_.find(path) != files_.end();
  }
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Content of one site path (null when absent). The handle keeps the
  /// bytes alive past this snapshot's retirement.
  [[nodiscard]] std::shared_ptr<const std::string> body(
      std::string_view path) const;

  /// GET semantics over the snapshot: absolute URI (under base) or
  /// site-relative path, fragment ignored; 404 on anything else. When
  /// `resolved_path` is non-null and the response is 200, receives the
  /// site path the request resolved to.
  [[nodiscard]] site::Response respond(
      std::string_view uri_or_path,
      std::string* resolved_path = nullptr) const;

  /// Arcs leaving the resource at `uri` (absolute or site-relative;
  /// normalized before lookup), linkbase document order. Empty when none.
  [[nodiscard]] const std::vector<SnapshotArc>& outgoing(
      std::string_view uri) const;

  /// First outgoing arc with the given arcrole ("next" or "nav:next"),
  /// null when absent.
  [[nodiscard]] const SnapshotArc* outgoing_with_role(
      std::string_view uri, std::string_view role) const;

 private:
  std::uint64_t epoch_;
  std::string base_;             // slash-terminated, as served
  std::string normalized_base_;  // uri::normalize(base_)
  std::map<std::string, std::shared_ptr<const std::string>, std::less<>>
      files_;
  std::map<std::string, std::vector<SnapshotArc>, std::less<>> arcs_by_from_;
};

/// The publication point between one writer and many readers. publish()
/// installs a new snapshot atomically; current() acquires the installed
/// one with a single atomic refcount bump — no reader ever waits on a
/// writer re-weaving the site, and no reader can observe a torn site:
/// it holds either the old epoch or the new one, never a mix.
///
/// Writers must be externally serialized (the engine's single-writer
/// mutation contract); readers need no synchronization at all.
class SnapshotStore {
 public:
  /// Install `snapshot` as current. Its epoch must exceed the installed
  /// one (throws navsep::SemanticError otherwise — epochs are the cache
  /// staleness signal and must move forward).
  void publish(std::shared_ptr<const SiteSnapshot> snapshot);

  /// Acquire the current snapshot (null before the first publish). The
  /// returned handle pins the snapshot: it stays valid however many
  /// epochs are published afterwards.
  [[nodiscard]] std::shared_ptr<const SiteSnapshot> current() const;

  /// Epoch of the current snapshot without acquiring it (0 before the
  /// first publish) — the cheap staleness probe response caches use.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
#if defined(__cpp_lib_atomic_shared_ptr)
  std::atomic<std::shared_ptr<const SiteSnapshot>> current_;
#else
  // Pre-C++20-library fallback: the deprecated-but-present free-function
  // atomics over shared_ptr.
  std::shared_ptr<const SiteSnapshot> current_;
#endif
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace navsep::serve

// Epoch-published site snapshots — the read side of concurrent serving.
//
// The paper's asymmetry is that navigation can be re-authored without
// touching page content; the serving runtime mirrors it: writers
// (nav::Engine mutations) produce a NEW immutable SiteSnapshot and
// publish it atomically, readers acquire whichever snapshot is current
// and keep it alive by refcount for as long as they read. Nobody blocks:
// a reader mid-request on epoch N is untouched by the publication of
// N+1; the last reader to drop N frees it (RCU with shared_ptr as the
// grace period).
//
// A snapshot is fully self-contained: it shares the artifact bytes with
// the VirtualSite it was taken from (cheap — refcount bumps, no copies)
// and materializes the traversal graph's arcs as owned strings, so no
// pointer in a snapshot reaches into engine state a writer might rebuild.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/navigation_aspect.hpp"
#include "nav/profile.hpp"
#include "nav/route.hpp"
#include "site/server.hpp"
#include "site/virtual_site.hpp"
#include "xlink/traversal.hpp"

/// Whether SnapshotStore may use std::atomic<std::shared_ptr> (see the
/// member declaration for why ThreadSanitizer builds must not).
#if defined(__SANITIZE_THREAD__)
#define NAVSEP_ATOMIC_SHARED_PTR 0
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NAVSEP_ATOMIC_SHARED_PTR 0
#endif
#endif
#ifndef NAVSEP_ATOMIC_SHARED_PTR
#if defined(__cpp_lib_atomic_shared_ptr)
#define NAVSEP_ATOMIC_SHARED_PTR 1
#else
#define NAVSEP_ATOMIC_SHARED_PTR 0
#endif
#endif

namespace navsep::serve {

/// One navigation arc of a snapshot, materialized by value (no pointers
/// into linkbase DOMs — those are writer-owned and rebuilt under the
/// readers' feet). URIs are normalized and absolute.
struct SnapshotArc {
  std::string from;
  std::string to;
  std::string arcrole;  // e.g. "nav:next"
  std::string title;
  bool traversable = true;  // false for show=none / actuate=none arcs

  friend bool operator==(const SnapshotArc&, const SnapshotArc&) = default;
};

/// Per-page content hashes of one linkbase's arc slice: site path of the
/// page the arcs leave → hash of those arcs' rendered-relevant fields
/// (from/to/role/title/context, in slice order). Absent pages have an
/// empty slice (kEmptySliceHash).
using PageSliceHashes = std::map<std::string, std::uint64_t, std::less<>>;

/// Slice hashes for every linkbase source: NavArc::source → per-page
/// hashes. Produced by the engine's arc-table rebuild (the same pass
/// that feeds the build graph's per-page slice nodes) and shared into
/// every published snapshot.
using SourceSliceHashes = std::map<std::string, PageSliceHashes, std::less<>>;

/// Hash of a slice no arc contributes to (a page the linkbase never
/// mentions). Distinct from kUnknownSliceHash so "family exists, page
/// has no arcs" never aliases "family unknown to this snapshot".
inline constexpr std::uint64_t kEmptySliceHash = 0x9e3779b97f4a7c15ull;

/// Hash standing in for a linkbase/family this snapshot doesn't know.
inline constexpr std::uint64_t kUnknownSliceHash = 0xc2b2ae3d27d4eb4full;

/// Fold one arc into a slice hash (order-sensitive — slice order is
/// render order). THE slice-hash producer: the engine's arc-table
/// rebuild and the snapshot's fallback both call it, so the two sides
/// can never drift.
[[nodiscard]] std::uint64_t combine_arc_slice(std::uint64_t slice,
                                              const core::NavArc& arc) noexcept;

/// The route programs a snapshot knows, as published by the engine and
/// shipped on the replication wire. AOT programs are informational here
/// (their expansion already rides the combined arc set as an ordinary
/// family); Lazy programs are what SiteSnapshot expands and memoizes on
/// first touch. `titles` exports the engine's node-id → title mapping —
/// the only navigational-model fact linkbase authoring consumes — so a
/// replica can synthesize byte-identical route linkbases without the
/// model.
struct RouteTable {
  struct Entry {
    nav::RouteProgram program;
    std::string source;  ///< its linkbase's site path ("links-<name>.xml")

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<Entry> entries;  ///< in registration order
  std::map<std::string, std::string, std::less<>> titles;

  friend bool operator==(const RouteTable&, const RouteTable&) = default;
};

/// The navigation-overlay inputs a snapshot carries beyond the site
/// bytes: the combined authored arc set (with per-linkbase provenance in
/// NavArc::source), which linkbase belongs to which context family, and
/// the registered serving profiles. The engine fills this at publish
/// time; a snapshot built without it (the 4-argument constructor, and
/// Tangled mode) serves every profile the base bytes.
struct SnapshotOverlayInputs {
  /// Combined arc set in weave order (structure linkbase first, then each
  /// family linkbase) — shared with the engine's arc table, immutable
  /// once published.
  std::shared_ptr<const std::vector<core::NavArc>> arcs;

  /// NavArc::source value of the access structure's own linkbase.
  std::string structure_source{site::kStructureLinkbasePath};

  struct Family {
    std::string name;    ///< context family name ("ByAuthor")
    std::string source;  ///< its linkbase's site path / NavArc::source
  };
  std::vector<Family> families;  ///< in engine (weave) order

  std::vector<nav::Profile> profiles;  ///< registered at capture time

  /// Per-(linkbase, page) slice hashes, threaded from the engine's
  /// arc-table rebuild. When null the snapshot derives them itself from
  /// `arcs` (same combine_arc_slice fold, so the result is identical).
  std::shared_ptr<const SourceSliceHashes> slice_hashes;

  /// Registered route programs (null when none) — shared with the engine
  /// and carried verbatim onto the replication wire.
  std::shared_ptr<const RouteTable> routes;
};

/// What one cached overlay response depends on, slice-precise: the
/// page's base bytes (a shared content handle — artifacts are swapped,
/// never mutated, so pointer identity is content identity), plus content
/// hashes of exactly the arc slices the overlay composes from — the
/// structure's arcs leaving THIS page and each profile family's arcs
/// leaving THIS page, in profile order. A family edit therefore retires
/// only entries whose rendered navigation actually changed: pages whose
/// (page, family) slice the edit never touched keep hitting, as do all
/// entries of profiles excluding the family. profile_token pins the
/// profile's family list itself, so replacing a profile by name can
/// never revalidate an entry composed under the old definition.
///
/// Hash equality stands in for content equality — the same convention
/// (and the same 2⁻⁶⁴ collision budget) as the build graph's early
/// cutoff, which already gates page re-weaves on these hashes.
struct OverlayValidity {
  std::shared_ptr<const std::string> base_body;
  std::uint64_t profile_token = 0;    ///< hash of the profile's family list
  std::uint64_t structure_slice = 0;  ///< structure arcs leaving the page
  std::vector<std::uint64_t> family_slices;  ///< per profile family

  [[nodiscard]] bool same_content(const OverlayValidity& other) const {
    return base_body == other.base_body &&
           profile_token == other.profile_token &&
           structure_slice == other.structure_slice &&
           family_slices == other.family_slices;
  }
};

/// A snapshot's logical content as plain data — what the replication
/// wire format carries and a replica reconstructs a SiteSnapshot from
/// without ever holding the origin's VirtualSite or TraversalGraph.
/// Also the introspection shape the encoder reads (SiteSnapshot::
/// files() / traversal_arcs() / overlay accessors return views of
/// exactly these members).
struct SnapshotState {
  std::string base;
  std::uint64_t epoch = 0;
  std::map<std::string, std::shared_ptr<const std::string>, std::less<>> files;
  std::map<std::string, std::vector<SnapshotArc>, std::less<>> arcs_by_from;
  /// Overlay inputs; a null `arcs` member means no overlays (base-only
  /// serving, as with the 4-argument capture constructor).
  SnapshotOverlayInputs overlays;
};

/// An immutable, refcounted view of one published site state. Never
/// mutated after construction — every member function is safe to call
/// from any number of threads.
class SiteSnapshot {
 public:
  /// Capture `site` + `graph` as published epoch `epoch` under `base`
  /// (slash-terminated). Artifact bytes are shared, arcs are copied out
  /// by value.
  SiteSnapshot(const site::VirtualSite& site, const xlink::TraversalGraph& graph,
               std::string base, std::uint64_t epoch);

  /// As above, additionally carrying the per-family arc slices and the
  /// profile table that make respond_as() compose profile-scoped
  /// navigation overlays.
  SiteSnapshot(const site::VirtualSite& site, const xlink::TraversalGraph& graph,
               std::string base, std::uint64_t epoch,
               SnapshotOverlayInputs overlays);

  /// Reconstruct a snapshot from decoded wire state (the replica path —
  /// see src/repl/). Behaves exactly like a captured snapshot: when
  /// `state.overlays.slice_hashes` is null the hashes are derived here
  /// via derive_slice_hashes(), so a decoded snapshot always carries
  /// slice hashes regardless of what the origin threaded.
  explicit SiteSnapshot(SnapshotState state);

  /// THE derive-when-absent path, explicit: fold every arc into its
  /// (source, page) slice through combine_arc_slice — the same fold the
  /// engine's arc-table rebuild uses to thread hashes into snapshots, so
  /// origin-threaded and locally-derived tables can never drift
  /// (asserted in tests/repl_test.cpp). Used whenever
  /// SnapshotOverlayInputs.slice_hashes is null.
  [[nodiscard]] static std::shared_ptr<const SourceSliceHashes>
  derive_slice_hashes(const std::vector<core::NavArc>& arcs);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const std::string& base() const noexcept { return base_; }

  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }
  [[nodiscard]] bool contains(std::string_view path) const {
    return files_.find(path) != files_.end();
  }
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Content of one site path (null when absent). The handle keeps the
  /// bytes alive past this snapshot's retirement.
  [[nodiscard]] std::shared_ptr<const std::string> body(
      std::string_view path) const;

  /// GET semantics over the snapshot: absolute URI (under base) or
  /// site-relative path, fragment ignored; 404 on anything else. When
  /// `resolved_path` is non-null and the response is 200, receives the
  /// site path the request resolved to.
  [[nodiscard]] site::Response respond(
      std::string_view uri_or_path,
      std::string* resolved_path = nullptr) const;

  /// Arcs leaving the resource at `uri` (absolute or site-relative;
  /// normalized before lookup), linkbase document order. Empty when none.
  [[nodiscard]] const std::vector<SnapshotArc>& outgoing(
      std::string_view uri) const;

  /// First outgoing arc with the given arcrole ("next" or "nav:next"),
  /// null when absent.
  [[nodiscard]] const SnapshotArc* outgoing_with_role(
      std::string_view uri, std::string_view role) const;

  // --- profile-scoped navigation overlays -------------------------------------

  /// True when this snapshot carries overlay inputs (combined arcs +
  /// family slices). Without them respond_as() serves base bytes.
  [[nodiscard]] bool overlays_enabled() const noexcept {
    return overlay_arcs_ != nullptr;
  }

  /// Profiles registered when this snapshot was captured.
  [[nodiscard]] const std::vector<nav::Profile>& profiles() const noexcept {
    return profiles_;
  }

  /// Profile by name, null when unknown.
  [[nodiscard]] const nav::Profile* find_profile(
      std::string_view name) const noexcept;

  /// GET as `profile` sees the site: page responses carry that profile's
  /// navigation block (the access structure's arcs plus the profile
  /// families' labeled tour groups) composed late onto the once-woven
  /// base page; contextual linkbases outside the profile 404 (a full
  /// build for the profile would not author them). Byte-identical to a
  /// full single-threaded build with SiteBuildOptions{context_families =
  /// profile.families, weave_context_tours = true}. Throws
  /// navsep::SemanticError for a profile name this snapshot doesn't know.
  [[nodiscard]] site::Response respond_as(
      std::string_view profile_name, std::string_view uri_or_path,
      std::string* resolved_path = nullptr) const;

  /// As above with the profile already resolved (via find_profile) —
  /// the serving hot path uses this to avoid a second name lookup.
  /// `profile` must be one of this snapshot's profiles().
  [[nodiscard]] site::Response respond_as(
      const nav::Profile& profile, std::string_view uri_or_path,
      std::string* resolved_path = nullptr) const;

  /// The arcs `profile` composes onto the page at `path` (a site path):
  /// structure arcs first, then each profile family's slice, in profile
  /// order — pointers into the shared combined arc set. Empty when none.
  [[nodiscard]] std::vector<const core::NavArc*> profile_arcs(
      std::string_view path, const nav::Profile& profile) const;

  /// The validity token of an overlay response for (profile, path): the
  /// base-bytes handle plus the slice hashes the response composes from
  /// (see OverlayValidity). Null base_body when the path is absent.
  [[nodiscard]] OverlayValidity overlay_validity(const nav::Profile& profile,
                                                 std::string_view path) const;

  // --- introspection (the replication encoder's view) -------------------------

  /// Every artifact as (site path → shared bytes) — the map respond()
  /// serves from.
  [[nodiscard]] const std::map<std::string, std::shared_ptr<const std::string>,
                               std::less<>>&
  files() const noexcept {
    return files_;
  }

  /// The materialized traversal arcs, bucketed by normalized source URI
  /// in linkbase document order — the map outgoing() reads.
  [[nodiscard]] const std::map<std::string, std::vector<SnapshotArc>,
                               std::less<>>&
  traversal_arcs() const noexcept {
    return arcs_by_from_;
  }

  /// The combined authored arc set (weave order, NavArc::source
  /// provenance); null when overlays are disabled.
  [[nodiscard]] const std::shared_ptr<const std::vector<core::NavArc>>&
  overlay_arcs() const noexcept {
    return overlay_arcs_;
  }

  /// NavArc::source of the access structure's own linkbase.
  [[nodiscard]] const std::string& structure_source() const noexcept {
    return structure_source_;
  }

  /// The context families this snapshot partitions overlay arcs by
  /// (name + linkbase source), in weave order.
  [[nodiscard]] std::vector<SnapshotOverlayInputs::Family> overlay_families()
      const;

  /// The per-(linkbase, page) slice hash table — always non-null when
  /// overlays_enabled(), whether threaded from the engine or derived.
  [[nodiscard]] const std::shared_ptr<const SourceSliceHashes>& slice_hashes()
      const noexcept {
    return slice_hashes_;
  }

  /// The route programs this snapshot was published with (null when
  /// none) — what the replication encoder ships.
  [[nodiscard]] const std::shared_ptr<const RouteTable>& route_table()
      const noexcept {
    return route_table_;
  }

 private:
  /// Per-linkbase slice: the arcs of one source, bucketed by the site
  /// path of the page they leave (core::default_href_for(from)).
  using ArcSlice =
      std::map<std::string, std::vector<const core::NavArc*>, std::less<>>;

  struct FamilySlice {
    std::string name;    // family name ("ByAuthor")
    std::string source;  // linkbase site path ("links-byauthor.xml")
    ArcSlice arcs_by_page;
    /// This source's per-page slice hashes (into slice_hashes_, which
    /// pins them); null when the source authored no arcs at all.
    const PageSliceHashes* hashes = nullptr;
  };

  /// Compose the overlay response body for a 200 page under `profile`
  /// (the splice of the late-rendered navigation block into the base
  /// bytes). Returns the base handle itself when the overlay output is
  /// byte-identical to it.
  [[nodiscard]] std::shared_ptr<const std::string> overlay_body(
      std::string_view path, const std::shared_ptr<const std::string>& base,
      const nav::Profile& profile) const;

  /// A lazily expanded route program: the synthesized linkbase text plus
  /// its arcs bucketed per page — everything a FamilySlice offers, owned
  /// by the memo entry (profile_arcs hands out pointers into `arcs`,
  /// which the snapshot keeps alive in route_slices_).
  struct RouteSlice {
    std::string name;
    std::string source;
    std::uint64_t token = 0;                  // nav::route_token(program)
    std::shared_ptr<const std::string> text;  // the authored linkbase doc
    std::vector<core::NavArc> arcs;           // in authored order
    ArcSlice arcs_by_page;                    // pointers into `arcs`
    PageSliceHashes hashes;
  };

  /// The Lazy-compiled route named `name`, expanded on first touch and
  /// memoized for this snapshot's lifetime; null when no such route.
  /// Thread-safe (the serve path calls it concurrently); expansion is a
  /// pure function of immutable snapshot state, so a duplicate race
  /// computes identical slices and the first insert wins.
  [[nodiscard]] std::shared_ptr<const RouteSlice> lazy_route_slice(
      std::string_view name) const;

  /// The shared tail of every constructor: bucket the combined arc set
  /// per (linkbase, page), resolve (or derive) the slice-hash table, and
  /// wire the per-family hash pointers.
  void init_overlays(SnapshotOverlayInputs overlays);

  std::uint64_t epoch_;
  std::string base_;             // slash-terminated, as served
  std::string normalized_base_;  // uri::normalize(base_)
  std::map<std::string, std::shared_ptr<const std::string>, std::less<>>
      files_;
  std::map<std::string, std::vector<SnapshotArc>, std::less<>> arcs_by_from_;

  // Overlay state (empty without SnapshotOverlayInputs).
  std::string structure_source_{site::kStructureLinkbasePath};
  std::shared_ptr<const std::vector<core::NavArc>> overlay_arcs_;
  std::shared_ptr<const SourceSliceHashes> slice_hashes_;
  const PageSliceHashes* structure_hashes_ = nullptr;  // into slice_hashes_
  ArcSlice structure_arcs_by_page_;
  std::vector<FamilySlice> families_;
  std::vector<nav::Profile> profiles_;
  std::shared_ptr<const RouteTable> route_table_;

  // Lazy route memo: route name → expanded slice, filled on first touch.
  // The only mutable state in a snapshot; guarded because readers share
  // the snapshot across threads. Entries are immutable once inserted.
  mutable std::mutex route_mutex_;
  mutable std::map<std::string, std::shared_ptr<const RouteSlice>,
                   std::less<>>
      route_slices_;
};

/// The publication point between one writer and many readers. publish()
/// installs a new snapshot atomically; current() acquires the installed
/// one with a single atomic refcount bump — no reader ever waits on a
/// writer re-weaving the site, and no reader can observe a torn site:
/// it holds either the old epoch or the new one, never a mix.
///
/// Writers must be externally serialized (the engine's single-writer
/// mutation contract); readers need no synchronization at all.
class SnapshotStore {
 public:
  /// Install `snapshot` as current. Its epoch must exceed the installed
  /// one (throws navsep::SemanticError otherwise — epochs are the cache
  /// staleness signal and must move forward).
  void publish(std::shared_ptr<const SiteSnapshot> snapshot);

  /// Acquire the current snapshot (null before the first publish). The
  /// returned handle pins the snapshot: it stays valid however many
  /// epochs are published afterwards.
  [[nodiscard]] std::shared_ptr<const SiteSnapshot> current() const;

  /// Epoch of the current snapshot without acquiring it (0 before the
  /// first publish) — the cheap staleness probe response caches use.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// How many snapshots have ever been published here. The probe behind
  /// the batching contract: a K-edit batch commit moves this by exactly
  /// one (epochs could in principle skip, so tests count publications,
  /// not epoch deltas).
  [[nodiscard]] std::uint64_t publishes() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
#if NAVSEP_ATOMIC_SHARED_PTR
  std::atomic<std::shared_ptr<const SiteSnapshot>> current_;
#else
  // Fallback: the deprecated-but-present free-function atomics over
  // shared_ptr (a pooled-mutex implementation). Taken pre-C++20-library,
  // and under ThreadSanitizer: libstdc++'s lock-free atomic<shared_ptr>
  // guards its pointer with an embedded spin bit TSan does not model as
  // a lock, so the lock-free branch reports phantom races on
  // publish/current pairs. Same semantics either way.
  std::shared_ptr<const SiteSnapshot> current_;
#endif
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace navsep::serve

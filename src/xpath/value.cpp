#include "xpath/value.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace navsep::xpath {

std::string number_to_string(double d) {
  if (std::isnan(d)) return "NaN";
  if (std::isinf(d)) return d > 0 ? "Infinity" : "-Infinity";
  if (d == 0) return "0";  // covers -0 as well
  if (d == static_cast<long long>(d)) {
    return std::to_string(static_cast<long long>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  return buf;
}

double string_to_number(std::string_view s) {
  std::string trimmed(strings::trim(s));
  if (trimmed.empty()) return std::nan("");
  // XPath numbers: optional '-', digits, optional fraction. Reject any
  // trailing garbage that strtod would accept (hex, exponents are not in
  // the XPath 1.0 grammar but we accept them as a benign extension).
  char* end = nullptr;
  double v = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size()) return std::nan("");
  return v;
}

const NodeSet& Value::node_set() const {
  if (const auto* ns = std::get_if<NodeSet>(&data_)) return *ns;
  throw SemanticError("cannot convert a non-node-set XPath value to a node-set");
}

bool Value::to_boolean() const {
  if (const auto* ns = std::get_if<NodeSet>(&data_)) return !ns->empty();
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  if (const auto* d = std::get_if<double>(&data_)) {
    return *d != 0 && !std::isnan(*d);
  }
  return !std::get<std::string>(data_).empty();
}

double Value::to_number() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? 1.0 : 0.0;
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  return string_to_number(to_string());
}

std::string Value::to_string() const {
  if (const auto* ns = std::get_if<NodeSet>(&data_)) {
    return ns->empty() ? std::string() : (*ns)[0]->string_value();
  }
  if (const auto* b = std::get_if<bool>(&data_)) return *b ? "true" : "false";
  if (const auto* d = std::get_if<double>(&data_)) return number_to_string(*d);
  return std::get<std::string>(data_);
}

namespace {

/// String-values of every node in the set.
std::vector<std::string> node_strings(const NodeSet& ns) {
  std::vector<std::string> out;
  out.reserve(ns.size());
  for (const auto* n : ns) out.push_back(n->string_value());
  return out;
}

bool number_equal(double a, double b) { return a == b; }  // NaN != NaN holds

}  // namespace

bool Value::compare_equal(const Value& a, const Value& b, bool negate) {
  // Node-set vs node-set: exists (x, y) with string(x) == string(y).
  if (a.is_node_set() && b.is_node_set()) {
    auto sa = node_strings(a.node_set());
    auto sb = node_strings(b.node_set());
    for (const auto& x : sa) {
      for (const auto& y : sb) {
        if ((x == y) != negate) return true;
      }
    }
    return false;
  }
  // Node-set vs scalar: exists node satisfying the scalar comparison.
  if (a.is_node_set() || b.is_node_set()) {
    const Value& set = a.is_node_set() ? a : b;
    const Value& scalar = a.is_node_set() ? b : a;
    for (const auto* n : set.node_set()) {
      std::string sv = n->string_value();
      bool eq;
      if (scalar.is_number()) {
        eq = number_equal(string_to_number(sv), scalar.to_number());
      } else if (scalar.is_boolean()) {
        eq = Value(NodeSet{n}).to_boolean() == scalar.to_boolean();
      } else {
        eq = sv == scalar.to_string();
      }
      if (eq != negate) return true;
    }
    return false;
  }
  // Scalar vs scalar: boolean > number > string priority.
  bool eq;
  if (a.is_boolean() || b.is_boolean()) {
    eq = a.to_boolean() == b.to_boolean();
  } else if (a.is_number() || b.is_number()) {
    eq = number_equal(a.to_number(), b.to_number());
  } else {
    eq = a.to_string() == b.to_string();
  }
  return eq != negate;
}

namespace {
bool relate(double x, double y, char op) {
  switch (op) {
    case '<': return x < y;
    case '>': return x > y;
    case 'l': return x <= y;
    case 'g': return x >= y;
  }
  return false;
}
}  // namespace

bool Value::compare_relational(const Value& a, const Value& b, char op) {
  if (a.is_node_set() && b.is_node_set()) {
    for (const auto* x : a.node_set()) {
      double xv = string_to_number(x->string_value());
      for (const auto* y : b.node_set()) {
        if (relate(xv, string_to_number(y->string_value()), op)) return true;
      }
    }
    return false;
  }
  if (a.is_node_set()) {
    double yv = b.to_number();
    for (const auto* x : a.node_set()) {
      if (relate(string_to_number(x->string_value()), yv, op)) return true;
    }
    return false;
  }
  if (b.is_node_set()) {
    double xv = a.to_number();
    for (const auto* y : b.node_set()) {
      if (relate(xv, string_to_number(y->string_value()), op)) return true;
    }
    return false;
  }
  return relate(a.to_number(), b.to_number(), op);
}

}  // namespace navsep::xpath

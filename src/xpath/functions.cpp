#include "xpath/functions.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace navsep::xpath {

namespace {

void require_arity(std::string_view name, const std::vector<Value>& args,
                   std::size_t min, std::size_t max) {
  if (args.size() < min || args.size() > max) {
    throw SemanticError("wrong number of arguments to " + std::string(name) +
                        "(): got " + std::to_string(args.size()));
  }
}

/// The context node as a singleton node-set (for zero-argument string(),
/// number(), name(), ...).
Value context_node_value(const EvalContext& ctx) {
  return Value(NodeSet{ctx.node});
}

std::string node_name(const xml::Node& n) {
  switch (n.type()) {
    case xml::NodeType::Element:
      return static_cast<const xml::Element&>(n).name().qualified();
    case xml::NodeType::Attribute:
      return static_cast<const xml::AttrNode&>(n).name().qualified();
    case xml::NodeType::ProcessingInstruction:
      return static_cast<const xml::ProcessingInstruction&>(n).target();
    default:
      return {};
  }
}

std::string node_local_name(const xml::Node& n) {
  switch (n.type()) {
    case xml::NodeType::Element:
      return static_cast<const xml::Element&>(n).name().local;
    case xml::NodeType::Attribute:
      return static_cast<const xml::AttrNode&>(n).name().local;
    case xml::NodeType::ProcessingInstruction:
      return static_cast<const xml::ProcessingInstruction&>(n).target();
    default:
      return {};
  }
}

std::string node_namespace_uri(const xml::Node& n) {
  switch (n.type()) {
    case xml::NodeType::Element:
      return static_cast<const xml::Element&>(n).name().ns_uri;
    case xml::NodeType::Attribute:
      return static_cast<const xml::AttrNode&>(n).name().ns_uri;
    default:
      return {};
  }
}

Value fn_id(const std::vector<Value>& args, const EvalContext& ctx) {
  const xml::Document* doc = ctx.node->owner_document();
  if (doc == nullptr && ctx.node->type() == xml::NodeType::Document) {
    doc = static_cast<const xml::Document*>(ctx.node);
  }
  NodeSet out;
  if (doc == nullptr) return Value(out);
  auto add_ids = [&](std::string_view text) {
    for (std::string_view id : strings::split_ws(text)) {
      if (const xml::Element* e = doc->element_by_id(id)) out.push_back(e);
    }
  };
  if (args[0].is_node_set()) {
    for (const auto* n : args[0].node_set()) add_ids(n->string_value());
  } else {
    add_ids(args[0].to_string());
  }
  xml::sort_document_order(out);
  return Value(std::move(out));
}

Value fn_substring(const std::vector<Value>& args) {
  // XPath substring() uses 1-based positions and round()s its arguments;
  // the edge cases (NaN, infinities) follow §4.2 exactly.
  std::string s = args[0].to_string();
  double start = std::floor(args[1].to_number() + 0.5);
  double length = args.size() == 3
                      ? std::floor(args[2].to_number() + 0.5)
                      : std::numeric_limits<double>::infinity();
  if (std::isnan(start) || std::isnan(length)) return Value(std::string());
  double end = start + length;
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    double pos = static_cast<double>(i) + 1;
    if (pos >= start && pos < end) out.push_back(s[i]);
  }
  return Value(std::move(out));
}

Value fn_translate(const std::vector<Value>& args) {
  std::string s = args[0].to_string();
  std::string from = args[1].to_string();
  std::string to = args[2].to_string();
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    std::size_t i = from.find(c);
    if (i == std::string::npos) {
      out.push_back(c);
    } else if (i < to.size()) {
      out.push_back(to[i]);
    }  // else: removed
  }
  return Value(std::move(out));
}

Value fn_round(double d) {
  if (std::isnan(d) || std::isinf(d)) return Value(d);
  return Value(std::floor(d + 0.5));
}

}  // namespace

std::optional<Value> call_core_function(std::string_view name,
                                        const std::vector<Value>& args,
                                        const EvalContext& ctx) {
  // --- node-set functions -----------------------------------------------
  if (name == "last") {
    require_arity(name, args, 0, 0);
    return Value(static_cast<double>(ctx.size));
  }
  if (name == "position") {
    require_arity(name, args, 0, 0);
    return Value(static_cast<double>(ctx.position));
  }
  if (name == "count") {
    require_arity(name, args, 1, 1);
    return Value(static_cast<double>(args[0].node_set().size()));
  }
  if (name == "id") {
    require_arity(name, args, 1, 1);
    return fn_id(args, ctx);
  }
  if (name == "local-name" || name == "name" || name == "namespace-uri") {
    require_arity(name, args, 0, 1);
    const xml::Node* n = ctx.node;
    if (!args.empty()) {
      const NodeSet& ns = args[0].node_set();
      if (ns.empty()) return Value(std::string());
      n = ns[0];
    }
    if (name == "local-name") return Value(node_local_name(*n));
    if (name == "name") return Value(node_name(*n));
    return Value(node_namespace_uri(*n));
  }

  // --- string functions ---------------------------------------------------
  if (name == "string") {
    require_arity(name, args, 0, 1);
    return Value(args.empty() ? context_node_value(ctx).to_string()
                              : args[0].to_string());
  }
  if (name == "concat") {
    if (args.size() < 2) {
      throw SemanticError("concat() needs at least two arguments");
    }
    std::string out;
    for (const auto& a : args) out += a.to_string();
    return Value(std::move(out));
  }
  if (name == "starts-with") {
    require_arity(name, args, 2, 2);
    return Value(args[0].to_string().starts_with(args[1].to_string()));
  }
  if (name == "contains") {
    require_arity(name, args, 2, 2);
    return Value(args[0].to_string().find(args[1].to_string()) !=
                 std::string::npos);
  }
  if (name == "substring-before") {
    require_arity(name, args, 2, 2);
    std::string s = args[0].to_string();
    std::size_t i = s.find(args[1].to_string());
    return Value(i == std::string::npos ? std::string() : s.substr(0, i));
  }
  if (name == "substring-after") {
    require_arity(name, args, 2, 2);
    std::string s = args[0].to_string();
    std::string t = args[1].to_string();
    std::size_t i = s.find(t);
    return Value(i == std::string::npos ? std::string()
                                        : s.substr(i + t.size()));
  }
  if (name == "substring") {
    require_arity(name, args, 2, 3);
    return fn_substring(args);
  }
  if (name == "string-length") {
    require_arity(name, args, 0, 1);
    std::string s = args.empty() ? context_node_value(ctx).to_string()
                                 : args[0].to_string();
    return Value(static_cast<double>(s.size()));
  }
  if (name == "normalize-space") {
    require_arity(name, args, 0, 1);
    std::string s = args.empty() ? context_node_value(ctx).to_string()
                                 : args[0].to_string();
    return Value(strings::normalize_space(s));
  }
  if (name == "translate") {
    require_arity(name, args, 3, 3);
    return fn_translate(args);
  }

  // --- boolean functions ---------------------------------------------------
  if (name == "boolean") {
    require_arity(name, args, 1, 1);
    return Value(args[0].to_boolean());
  }
  if (name == "not") {
    require_arity(name, args, 1, 1);
    return Value(!args[0].to_boolean());
  }
  if (name == "true") {
    require_arity(name, args, 0, 0);
    return Value(true);
  }
  if (name == "false") {
    require_arity(name, args, 0, 0);
    return Value(false);
  }

  // --- number functions ----------------------------------------------------
  if (name == "number") {
    require_arity(name, args, 0, 1);
    return Value(args.empty() ? context_node_value(ctx).to_number()
                              : args[0].to_number());
  }
  if (name == "sum") {
    require_arity(name, args, 1, 1);
    double total = 0;
    for (const auto* n : args[0].node_set()) {
      total += string_to_number(n->string_value());
    }
    return Value(total);
  }
  if (name == "floor") {
    require_arity(name, args, 1, 1);
    return Value(std::floor(args[0].to_number()));
  }
  if (name == "ceiling") {
    require_arity(name, args, 1, 1);
    return Value(std::ceil(args[0].to_number()));
  }
  if (name == "round") {
    require_arity(name, args, 1, 1);
    return fn_round(args[0].to_number());
  }

  return std::nullopt;
}

}  // namespace navsep::xpath

#include "xpath/ast.hpp"

namespace navsep::xpath {

const char* axis_name(Axis a) noexcept {
  switch (a) {
    case Axis::Child: return "child";
    case Axis::Descendant: return "descendant";
    case Axis::Parent: return "parent";
    case Axis::Ancestor: return "ancestor";
    case Axis::FollowingSibling: return "following-sibling";
    case Axis::PrecedingSibling: return "preceding-sibling";
    case Axis::Following: return "following";
    case Axis::Preceding: return "preceding";
    case Axis::Attribute: return "attribute";
    case Axis::Self: return "self";
    case Axis::DescendantOrSelf: return "descendant-or-self";
    case Axis::AncestorOrSelf: return "ancestor-or-self";
  }
  return "?";
}

std::string NodeTest::to_string() const {
  switch (kind) {
    case Kind::AnyName:
      return prefix.empty() ? "*" : prefix + ":*";
    case Kind::Name:
      return prefix.empty() ? local : prefix + ":" + local;
    case Kind::Text: return "text()";
    case Kind::Comment: return "comment()";
    case Kind::AnyNode: return "node()";
    case Kind::Pi:
      return local.empty() ? "processing-instruction()"
                           : "processing-instruction('" + local + "')";
  }
  return "?";
}

namespace {
const char* op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::Or: return " or ";
    case BinaryOp::And: return " and ";
    case BinaryOp::Equal: return " = ";
    case BinaryOp::NotEqual: return " != ";
    case BinaryOp::Less: return " < ";
    case BinaryOp::LessEqual: return " <= ";
    case BinaryOp::Greater: return " > ";
    case BinaryOp::GreaterEqual: return " >= ";
    case BinaryOp::Add: return " + ";
    case BinaryOp::Subtract: return " - ";
    case BinaryOp::Multiply: return " * ";
    case BinaryOp::Divide: return " div ";
    case BinaryOp::Modulo: return " mod ";
    case BinaryOp::Union: return " | ";
  }
  return " ? ";
}

std::string steps_to_string(const std::vector<Step>& steps) {
  std::string out;
  bool first = true;
  for (const auto& s : steps) {
    if (!first) out += '/';
    first = false;
    out += axis_name(s.axis);
    out += "::";
    out += s.test.to_string();
    for (const auto& p : s.predicates) {
      out += '[';
      out += p->to_string();
      out += ']';
    }
  }
  return out;
}
}  // namespace

std::string Expr::to_string() const {
  switch (kind) {
    case Kind::LocationPath:
      return (absolute ? "/" : "") + steps_to_string(steps);
    case Kind::Filter: {
      std::string out = "(" + primary->to_string() + ")";
      for (const auto& p : predicates) {
        out += '[';
        out += p->to_string();
        out += ']';
      }
      if (!steps.empty()) {
        out += '/';
        out += steps_to_string(steps);
      }
      return out;
    }
    case Kind::Binary:
      return "(" + lhs->to_string() + op_text(op) + rhs->to_string() + ")";
    case Kind::Negate:
      return "-(" + lhs->to_string() + ")";
    case Kind::Literal:
      return "'" + string_value + "'";
    case Kind::Number: {
      std::string s = std::to_string(number_value);
      // trim trailing zeros for readability
      while (s.find('.') != std::string::npos &&
             (s.back() == '0' || s.back() == '.')) {
        bool dot = s.back() == '.';
        s.pop_back();
        if (dot) break;
      }
      return s;
    }
    case Kind::Variable:
      return "$" + string_value;
    case Kind::FunctionCall: {
      std::string out = string_value + "(";
      bool first = true;
      for (const auto& a : args) {
        if (!first) out += ", ";
        first = false;
        out += a->to_string();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace navsep::xpath

// Recursive-descent parser for the XPath 1.0 subset, producing xpath::Expr.
#pragma once

#include <string_view>

#include "xpath/ast.hpp"

namespace navsep::xpath {

/// Parse a complete expression. Throws navsep::ParseError on syntax errors
/// and on unknown axis names.
[[nodiscard]] ExprPtr parse_expression(std::string_view text);

}  // namespace navsep::xpath

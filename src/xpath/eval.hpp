// XPath evaluation over the navsep::xml DOM.
//
// Usage:
//   auto expr = xpath::parse_expression("//painting[@artist='picasso']");
//   xpath::Environment env;
//   xpath::NodeSet hits = xpath::select(*expr, *doc.root(), env);
//
// The Environment supplies variable bindings, namespace-prefix bindings for
// name tests, and extension functions. The full XPath 1.0 core function
// library is built in (see functions.cpp).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "xpath/ast.hpp"
#include "xpath/value.hpp"

namespace navsep::xpath {

struct EvalContext;

/// Extension function: receives already-evaluated arguments.
using ExtensionFunction =
    std::function<Value(const std::vector<Value>&, const EvalContext&)>;

/// Static evaluation environment shared by a whole evaluation.
struct Environment {
  std::map<std::string, Value, std::less<>> variables;
  std::map<std::string, std::string, std::less<>> namespaces;
  std::map<std::string, ExtensionFunction, std::less<>> functions;
};

/// Dynamic context: the context node plus position()/last() within the
/// current node list.
struct EvalContext {
  const xml::Node* node = nullptr;
  std::size_t position = 1;
  std::size_t size = 1;
  const Environment* env = nullptr;
};

/// Evaluate a parsed expression. Throws navsep::SemanticError for unknown
/// variables/functions and for type errors.
[[nodiscard]] Value evaluate(const Expr& expr, const EvalContext& ctx);

/// Convenience: parse + evaluate with `node` as the context node.
[[nodiscard]] Value evaluate(std::string_view expr, const xml::Node& node,
                             const Environment& env = {});

/// Convenience: evaluate and require a node-set result.
[[nodiscard]] NodeSet select(const Expr& expr, const xml::Node& node,
                             const Environment& env = {});
[[nodiscard]] NodeSet select(std::string_view expr, const xml::Node& node,
                             const Environment& env = {});

/// First node of select(), or nullptr.
[[nodiscard]] const xml::Node* select_first(std::string_view expr,
                                            const xml::Node& node,
                                            const Environment& env = {});

}  // namespace navsep::xpath

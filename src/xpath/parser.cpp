#include "xpath/parser.hpp"

#include <utility>

#include "common/error.hpp"
#include "xpath/lexer.hpp"

namespace navsep::xpath {

namespace {

Axis axis_from_name(std::string_view name, Position pos) {
  if (name == "child") return Axis::Child;
  if (name == "descendant") return Axis::Descendant;
  if (name == "parent") return Axis::Parent;
  if (name == "ancestor") return Axis::Ancestor;
  if (name == "following-sibling") return Axis::FollowingSibling;
  if (name == "preceding-sibling") return Axis::PrecedingSibling;
  if (name == "following") return Axis::Following;
  if (name == "preceding") return Axis::Preceding;
  if (name == "attribute") return Axis::Attribute;
  if (name == "self") return Axis::Self;
  if (name == "descendant-or-self") return Axis::DescendantOrSelf;
  if (name == "ancestor-or-self") return Axis::AncestorOrSelf;
  throw ParseError("unknown axis '" + std::string(name) + "'", pos);
}

bool is_node_type_name(std::string_view name) noexcept {
  return name == "text" || name == "comment" || name == "node" ||
         name == "processing-instruction";
}

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  ExprPtr run() {
    ExprPtr e = parse_or();
    expect(TokenType::End, "end of expression");
    return e;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    std::size_t i = index_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[index_++]; }
  bool check(TokenType t) const { return peek().type == t; }
  bool check_op(std::string_view text) const {
    return peek().type == TokenType::Operator && peek().text == text;
  }
  bool match(TokenType t) {
    if (!check(t)) return false;
    ++index_;
    return true;
  }
  bool match_op(std::string_view text) {
    if (!check_op(text)) return false;
    ++index_;
    return true;
  }
  void expect(TokenType t, std::string_view what) {
    if (!match(t)) {
      throw ParseError("expected " + std::string(what) + ", found '" +
                           peek().text + "'",
                       peek().pos);
    }
  }

  ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>(Expr::Kind::Binary);
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr e = parse_and();
    while (match_op("or")) e = binary(BinaryOp::Or, std::move(e), parse_and());
    return e;
  }

  ExprPtr parse_and() {
    ExprPtr e = parse_equality();
    while (match_op("and")) {
      e = binary(BinaryOp::And, std::move(e), parse_equality());
    }
    return e;
  }

  ExprPtr parse_equality() {
    ExprPtr e = parse_relational();
    for (;;) {
      if (match_op("=")) {
        e = binary(BinaryOp::Equal, std::move(e), parse_relational());
      } else if (match_op("!=")) {
        e = binary(BinaryOp::NotEqual, std::move(e), parse_relational());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_relational() {
    ExprPtr e = parse_additive();
    for (;;) {
      if (match_op("<")) {
        e = binary(BinaryOp::Less, std::move(e), parse_additive());
      } else if (match_op("<=")) {
        e = binary(BinaryOp::LessEqual, std::move(e), parse_additive());
      } else if (match_op(">")) {
        e = binary(BinaryOp::Greater, std::move(e), parse_additive());
      } else if (match_op(">=")) {
        e = binary(BinaryOp::GreaterEqual, std::move(e), parse_additive());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    for (;;) {
      if (match_op("+")) {
        e = binary(BinaryOp::Add, std::move(e), parse_multiplicative());
      } else if (match_op("-")) {
        e = binary(BinaryOp::Subtract, std::move(e), parse_multiplicative());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    for (;;) {
      if (match_op("*")) {
        e = binary(BinaryOp::Multiply, std::move(e), parse_unary());
      } else if (match_op("div")) {
        e = binary(BinaryOp::Divide, std::move(e), parse_unary());
      } else if (match_op("mod")) {
        e = binary(BinaryOp::Modulo, std::move(e), parse_unary());
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_unary() {
    if (match_op("-")) {
      auto e = std::make_unique<Expr>(Expr::Kind::Negate);
      e->lhs = parse_unary();
      return e;
    }
    return parse_union();
  }

  ExprPtr parse_union() {
    ExprPtr e = parse_path();
    while (match_op("|")) {
      e = binary(BinaryOp::Union, std::move(e), parse_path());
    }
    return e;
  }

  /// Is the current token the start of a location-path step?
  bool at_step_start() const {
    switch (peek().type) {
      case TokenType::Name:
      case TokenType::Star:
      case TokenType::At:
      case TokenType::Dot:
      case TokenType::DotDot:
      case TokenType::AxisName:
        return true;
      case TokenType::FunctionName:
        return is_node_type_name(peek().text);
      default:
        return false;
    }
  }

  ExprPtr parse_path() {
    // Absolute location paths.
    if (check(TokenType::Slash) || check(TokenType::DoubleSlash)) {
      auto e = std::make_unique<Expr>(Expr::Kind::LocationPath);
      e->absolute = true;
      if (match(TokenType::Slash)) {
        if (at_step_start()) parse_relative_path(e->steps);
      } else {
        advance();  // //
        e->steps.push_back(descendant_or_self_step());
        parse_relative_path(e->steps);
      }
      return e;
    }
    // Relative location path?
    if (at_step_start()) {
      auto e = std::make_unique<Expr>(Expr::Kind::LocationPath);
      parse_relative_path(e->steps);
      return e;
    }
    // Filter expression with optional trailing path.
    auto e = std::make_unique<Expr>(Expr::Kind::Filter);
    e->primary = parse_primary();
    while (check(TokenType::LBracket)) {
      e->predicates.push_back(parse_predicate());
    }
    if (match(TokenType::Slash)) {
      parse_relative_path(e->steps);
    } else if (match(TokenType::DoubleSlash)) {
      e->steps.push_back(descendant_or_self_step());
      parse_relative_path(e->steps);
    }
    // A filter with no predicates and no trailing path is just its primary.
    if (e->predicates.empty() && e->steps.empty()) {
      return std::move(e->primary);
    }
    return e;
  }

  static Step descendant_or_self_step() {
    Step s;
    s.axis = Axis::DescendantOrSelf;
    s.test.kind = NodeTest::Kind::AnyNode;
    return s;
  }

  void parse_relative_path(std::vector<Step>& steps) {
    steps.push_back(parse_step());
    for (;;) {
      if (match(TokenType::Slash)) {
        steps.push_back(parse_step());
      } else if (match(TokenType::DoubleSlash)) {
        steps.push_back(descendant_or_self_step());
        steps.push_back(parse_step());
      } else {
        return;
      }
    }
  }

  Step parse_step() {
    Step s;
    if (match(TokenType::Dot)) {
      s.axis = Axis::Self;
      s.test.kind = NodeTest::Kind::AnyNode;
      return s;
    }
    if (match(TokenType::DotDot)) {
      s.axis = Axis::Parent;
      s.test.kind = NodeTest::Kind::AnyNode;
      return s;
    }
    if (check(TokenType::AxisName)) {
      const Token& t = advance();
      s.axis = axis_from_name(t.text, t.pos);
      expect(TokenType::ColonColon, "'::' after axis name");
    } else if (match(TokenType::At)) {
      s.axis = Axis::Attribute;
    }
    s.test = parse_node_test();
    while (check(TokenType::LBracket)) {
      s.predicates.push_back(parse_predicate());
    }
    return s;
  }

  NodeTest parse_node_test() {
    NodeTest t;
    if (match(TokenType::Star)) {
      t.kind = NodeTest::Kind::AnyName;
      return t;
    }
    if (check(TokenType::FunctionName) && is_node_type_name(peek().text)) {
      const Token& tok = advance();
      expect(TokenType::LParen, "'('");
      if (tok.text == "text") {
        t.kind = NodeTest::Kind::Text;
      } else if (tok.text == "comment") {
        t.kind = NodeTest::Kind::Comment;
      } else if (tok.text == "node") {
        t.kind = NodeTest::Kind::AnyNode;
      } else {
        t.kind = NodeTest::Kind::Pi;
        if (check(TokenType::Literal)) t.local = advance().text;
      }
      expect(TokenType::RParen, "')'");
      return t;
    }
    if (check(TokenType::Name)) {
      const Token& tok = advance();
      t.kind = NodeTest::Kind::Name;
      std::size_t colon = tok.text.find(':');
      if (colon == std::string::npos) {
        t.local = tok.text;
      } else {
        t.prefix = tok.text.substr(0, colon);
        t.local = tok.text.substr(colon + 1);
        if (t.local == "*") {
          t.kind = NodeTest::Kind::AnyName;  // prefix:* keeps the prefix
        }
      }
      return t;
    }
    throw ParseError("expected node test, found '" + peek().text + "'",
                     peek().pos);
  }

  ExprPtr parse_predicate() {
    expect(TokenType::LBracket, "'['");
    ExprPtr e = parse_or();
    expect(TokenType::RBracket, "']'");
    return e;
  }

  ExprPtr parse_primary() {
    if (check(TokenType::Variable)) {
      auto e = std::make_unique<Expr>(Expr::Kind::Variable);
      e->string_value = advance().text;
      return e;
    }
    if (match(TokenType::LParen)) {
      ExprPtr inner = parse_or();
      expect(TokenType::RParen, "')'");
      return inner;
    }
    if (check(TokenType::Literal)) {
      auto e = std::make_unique<Expr>(Expr::Kind::Literal);
      e->string_value = advance().text;
      return e;
    }
    if (check(TokenType::Number)) {
      auto e = std::make_unique<Expr>(Expr::Kind::Number);
      e->number_value = advance().number;
      return e;
    }
    if (check(TokenType::FunctionName)) {
      auto e = std::make_unique<Expr>(Expr::Kind::FunctionCall);
      e->string_value = advance().text;
      expect(TokenType::LParen, "'('");
      if (!check(TokenType::RParen)) {
        e->args.push_back(parse_or());
        while (match(TokenType::Comma)) e->args.push_back(parse_or());
      }
      expect(TokenType::RParen, "')'");
      return e;
    }
    throw ParseError("expected expression, found '" + peek().text + "'",
                     peek().pos);
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

ExprPtr parse_expression(std::string_view text) { return Parser(text).run(); }

}  // namespace navsep::xpath

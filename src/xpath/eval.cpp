#include "xpath/eval.hpp"

#include <cmath>

#include "common/error.hpp"
#include "xpath/functions.hpp"
#include "xpath/parser.hpp"

namespace navsep::xpath {

namespace {

bool is_reverse_axis(Axis a) noexcept {
  switch (a) {
    case Axis::Ancestor:
    case Axis::AncestorOrSelf:
    case Axis::Preceding:
    case Axis::PrecedingSibling:
    case Axis::Parent:
      return true;
    default:
      return false;
  }
}

/// Children list of a node (elements and documents only).
const std::vector<std::unique_ptr<xml::Node>>* children_of(
    const xml::Node& n) {
  if (const auto* e = n.as_element()) return &e->children();
  if (n.type() == xml::NodeType::Document) {
    return &static_cast<const xml::Document&>(n).children();
  }
  return nullptr;
}

void collect_descendants(const xml::Node& n, NodeSet& out) {
  if (const auto* kids = children_of(n)) {
    for (const auto& c : *kids) {
      out.push_back(c.get());
      collect_descendants(*c, out);
    }
  }
}

class Evaluator {
 public:
  Value eval(const Expr& e, const EvalContext& ctx) {
    switch (e.kind) {
      case Expr::Kind::Literal:
        return Value(e.string_value);
      case Expr::Kind::Number:
        return Value(e.number_value);
      case Expr::Kind::Variable: {
        auto it = ctx.env->variables.find(e.string_value);
        if (it == ctx.env->variables.end()) {
          throw SemanticError("unbound XPath variable $" + e.string_value);
        }
        return it->second;
      }
      case Expr::Kind::Negate:
        return Value(-eval(*e.lhs, ctx).to_number());
      case Expr::Kind::Binary:
        return eval_binary(e, ctx);
      case Expr::Kind::FunctionCall:
        return eval_function(e, ctx);
      case Expr::Kind::LocationPath:
        return Value(eval_path(e, ctx));
      case Expr::Kind::Filter:
        return eval_filter(e, ctx);
    }
    throw SemanticError("unreachable XPath expression kind");
  }

 private:
  Value eval_binary(const Expr& e, const EvalContext& ctx) {
    switch (e.op) {
      case BinaryOp::Or:
        return Value(eval(*e.lhs, ctx).to_boolean() ||
                     eval(*e.rhs, ctx).to_boolean());
      case BinaryOp::And:
        return Value(eval(*e.lhs, ctx).to_boolean() &&
                     eval(*e.rhs, ctx).to_boolean());
      default:
        break;
    }
    Value a = eval(*e.lhs, ctx);
    Value b = eval(*e.rhs, ctx);
    switch (e.op) {
      case BinaryOp::Equal:
        return Value(Value::compare_equal(a, b, false));
      case BinaryOp::NotEqual:
        return Value(Value::compare_equal(a, b, true));
      case BinaryOp::Less:
        return Value(Value::compare_relational(a, b, '<'));
      case BinaryOp::LessEqual:
        return Value(Value::compare_relational(a, b, 'l'));
      case BinaryOp::Greater:
        return Value(Value::compare_relational(a, b, '>'));
      case BinaryOp::GreaterEqual:
        return Value(Value::compare_relational(a, b, 'g'));
      case BinaryOp::Add:
        return Value(a.to_number() + b.to_number());
      case BinaryOp::Subtract:
        return Value(a.to_number() - b.to_number());
      case BinaryOp::Multiply:
        return Value(a.to_number() * b.to_number());
      case BinaryOp::Divide:
        return Value(a.to_number() / b.to_number());
      case BinaryOp::Modulo:
        return Value(std::fmod(a.to_number(), b.to_number()));
      case BinaryOp::Union: {
        NodeSet out = a.node_set();
        const NodeSet& more = b.node_set();
        out.insert(out.end(), more.begin(), more.end());
        xml::sort_document_order(out);
        return Value(std::move(out));
      }
      case BinaryOp::Or:
      case BinaryOp::And:
        break;
    }
    throw SemanticError("unreachable XPath binary operator");
  }

  Value eval_function(const Expr& e, const EvalContext& ctx) {
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& a : e.args) args.push_back(eval(*a, ctx));
    if (auto v = call_core_function(e.string_value, args, ctx)) {
      return std::move(*v);
    }
    auto it = ctx.env->functions.find(e.string_value);
    if (it == ctx.env->functions.end()) {
      throw SemanticError("unknown XPath function " + e.string_value + "()");
    }
    return it->second(args, ctx);
  }

  NodeSet eval_path(const Expr& e, const EvalContext& ctx) {
    NodeSet start;
    if (e.absolute) {
      const xml::Document* doc = ctx.node->owner_document();
      if (doc == nullptr && ctx.node->type() == xml::NodeType::Document) {
        doc = static_cast<const xml::Document*>(ctx.node);
      }
      if (doc == nullptr) {
        throw SemanticError(
            "absolute XPath evaluated on a node with no document");
      }
      start.push_back(doc);
    } else {
      start.push_back(ctx.node);
    }
    return apply_steps(std::move(start), e.steps, *ctx.env);
  }

  Value eval_filter(const Expr& e, const EvalContext& ctx) {
    Value primary = eval(*e.primary, ctx);
    if (e.predicates.empty() && e.steps.empty()) return primary;

    NodeSet nodes = primary.node_set();  // throws for non-node-sets
    for (const auto& pred : e.predicates) {
      nodes = filter_nodes(std::move(nodes), *pred, *ctx.env,
                           /*reverse=*/false);
    }
    if (!e.steps.empty()) {
      nodes = apply_steps(std::move(nodes), e.steps, *ctx.env);
    }
    return Value(std::move(nodes));
  }

  NodeSet apply_steps(NodeSet current, const std::vector<Step>& steps,
                      const Environment& env) {
    for (const auto& step : steps) {
      NodeSet next;
      for (const auto* node : current) {
        NodeSet candidates = axis_nodes(*node, step.axis);
        // Drop candidates failing the node test before predicates so that
        // position() counts only test-passing nodes (XPath semantics).
        NodeSet tested;
        for (const auto* cand : candidates) {
          if (matches_test(*cand, step, env)) tested.push_back(cand);
        }
        for (const auto& pred : step.predicates) {
          tested = filter_nodes(std::move(tested), *pred, env,
                                is_reverse_axis(step.axis));
        }
        next.insert(next.end(), tested.begin(), tested.end());
      }
      xml::sort_document_order(next);
      current = std::move(next);
    }
    return current;
  }

  /// Candidate nodes on `axis` from `origin`, in axis order (reverse axes
  /// yield reverse document order, which is what predicate numbering needs).
  NodeSet axis_nodes(const xml::Node& origin, Axis axis) {
    NodeSet out;
    switch (axis) {
      case Axis::Self:
        out.push_back(&origin);
        break;
      case Axis::Child:
        if (const auto* kids = children_of(origin)) {
          for (const auto& c : *kids) out.push_back(c.get());
        }
        break;
      case Axis::Descendant:
        collect_descendants(origin, out);
        break;
      case Axis::DescendantOrSelf:
        out.push_back(&origin);
        collect_descendants(origin, out);
        break;
      case Axis::Parent:
        if (origin.parent() != nullptr) out.push_back(origin.parent());
        break;
      case Axis::Ancestor:
        for (const xml::Node* p = origin.parent(); p != nullptr;
             p = p->parent()) {
          out.push_back(p);
        }
        break;
      case Axis::AncestorOrSelf:
        for (const xml::Node* p = &origin; p != nullptr; p = p->parent()) {
          out.push_back(p);
        }
        break;
      case Axis::FollowingSibling:
      case Axis::PrecedingSibling: {
        if (origin.parent() == nullptr ||
            origin.type() == xml::NodeType::Attribute) {
          break;
        }
        const auto* sibs = children_of(*origin.parent());
        if (sibs == nullptr) break;
        std::size_t self_index = origin.sibling_index();
        if (axis == Axis::FollowingSibling) {
          for (std::size_t i = self_index + 1; i < sibs->size(); ++i) {
            out.push_back((*sibs)[i].get());
          }
        } else {
          for (std::size_t i = self_index; i-- > 0;) {
            out.push_back((*sibs)[i].get());
          }
        }
        break;
      }
      case Axis::Following:
      case Axis::Preceding: {
        // Walk the whole document in order and keep what lies on the axis.
        const xml::Document* doc = origin.owner_document();
        if (doc == nullptr) break;
        NodeSet all;
        collect_descendants(*doc, all);
        const xml::Node* anchor =
            origin.type() == xml::NodeType::Attribute
                ? origin.parent()
                : &origin;
        bool after = false;
        NodeSet following;
        NodeSet preceding;
        for (const auto* n : all) {
          if (n == anchor) {
            after = true;
            continue;
          }
          if (!after) {
            if (!n->contains(*anchor)) preceding.push_back(n);
          } else {
            if (!anchor->contains(*n)) following.push_back(n);
          }
        }
        if (axis == Axis::Following) {
          out = std::move(following);
        } else {
          out.assign(preceding.rbegin(), preceding.rend());
        }
        break;
      }
      case Axis::Attribute: {
        const auto* e = origin.as_element();
        if (e == nullptr) break;
        for (std::size_t i = 0; i < e->attributes().size(); ++i) {
          if (e->attributes()[i].is_namespace_decl()) continue;
          out.push_back(e->attribute_node(i));
        }
        break;
      }
    }
    return out;
  }

  bool matches_test(const xml::Node& n, const Step& step,
                    const Environment& env) {
    const bool principal_is_attribute = step.axis == Axis::Attribute;
    switch (step.test.kind) {
      case NodeTest::Kind::AnyNode:
        return true;
      case NodeTest::Kind::Text:
        return n.type() == xml::NodeType::Text;
      case NodeTest::Kind::Comment:
        return n.type() == xml::NodeType::Comment;
      case NodeTest::Kind::Pi: {
        if (n.type() != xml::NodeType::ProcessingInstruction) return false;
        if (step.test.local.empty()) return true;
        return static_cast<const xml::ProcessingInstruction&>(n).target() ==
               step.test.local;
      }
      case NodeTest::Kind::AnyName:
      case NodeTest::Kind::Name: {
        const xml::QName* qn = nullptr;
        if (principal_is_attribute) {
          if (n.type() != xml::NodeType::Attribute) return false;
          qn = &static_cast<const xml::AttrNode&>(n).name();
        } else {
          const auto* e = n.as_element();
          if (e == nullptr) return false;
          qn = &e->name();
        }
        std::string wanted_ns;
        if (!step.test.prefix.empty()) {
          auto it = env.namespaces.find(step.test.prefix);
          if (it == env.namespaces.end()) {
            throw SemanticError("undeclared XPath namespace prefix '" +
                                step.test.prefix + "'");
          }
          wanted_ns = it->second;
        }
        if (step.test.kind == NodeTest::Kind::AnyName) {
          return step.test.prefix.empty() || qn->ns_uri == wanted_ns;
        }
        return qn->local == step.test.local && qn->ns_uri == wanted_ns;
      }
    }
    return false;
  }

  NodeSet filter_nodes(NodeSet nodes, const Expr& predicate,
                       const Environment& env, bool reverse) {
    NodeSet out;
    const std::size_t size = nodes.size();
    for (std::size_t i = 0; i < size; ++i) {
      EvalContext ctx;
      ctx.node = nodes[i];
      ctx.position = i + 1;
      ctx.size = size;
      ctx.env = &env;
      Value v = eval(predicate, ctx);
      bool keep = v.is_number()
                      ? v.to_number() == static_cast<double>(ctx.position)
                      : v.to_boolean();
      if (keep) out.push_back(nodes[i]);
    }
    // `reverse` is already encoded in the candidate order handed to us;
    // results keep that order for subsequent predicates.
    (void)reverse;
    return out;
  }
};

}  // namespace

Value evaluate(const Expr& expr, const EvalContext& ctx) {
  if (ctx.node == nullptr || ctx.env == nullptr) {
    throw SemanticError("XPath evaluation needs a context node and env");
  }
  return Evaluator().eval(expr, ctx);
}

Value evaluate(std::string_view expr, const xml::Node& node,
               const Environment& env) {
  ExprPtr parsed = parse_expression(expr);
  EvalContext ctx;
  ctx.node = &node;
  ctx.env = &env;
  return evaluate(*parsed, ctx);
}

NodeSet select(const Expr& expr, const xml::Node& node,
               const Environment& env) {
  EvalContext ctx;
  ctx.node = &node;
  ctx.env = &env;
  return evaluate(expr, ctx).node_set();
}

NodeSet select(std::string_view expr, const xml::Node& node,
               const Environment& env) {
  return evaluate(expr, node, env).node_set();
}

const xml::Node* select_first(std::string_view expr, const xml::Node& node,
                              const Environment& env) {
  NodeSet ns = select(expr, node, env);
  return ns.empty() ? nullptr : ns.front();
}

}  // namespace navsep::xpath

// The XPath 1.0 value model: node-set, boolean, number, string, plus the
// standard conversion rules between them (XPath 1.0 §3.2–§4.3).
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "xml/dom.hpp"

namespace navsep::xpath {

/// A node-set: unique nodes in document order.
using NodeSet = std::vector<const xml::Node*>;

class Value {
 public:
  Value() : data_(NodeSet{}) {}
  explicit Value(NodeSet nodes) : data_(std::move(nodes)) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}

  [[nodiscard]] bool is_node_set() const noexcept {
    return std::holds_alternative<NodeSet>(data_);
  }
  [[nodiscard]] bool is_boolean() const noexcept {
    return std::holds_alternative<bool>(data_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<double>(data_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(data_);
  }

  /// The underlying node-set; throws navsep::SemanticError for other types
  /// (XPath forbids converting non-node-sets to node-sets).
  [[nodiscard]] const NodeSet& node_set() const;

  /// XPath boolean() conversion.
  [[nodiscard]] bool to_boolean() const;

  /// XPath number() conversion (NaN on unparseable strings).
  [[nodiscard]] double to_number() const;

  /// XPath string() conversion (first node's string-value for node-sets,
  /// -0/NaN/Infinity formatting rules for numbers).
  [[nodiscard]] std::string to_string() const;

  /// XPath = / != / < comparison semantics, which are existential over
  /// node-sets (any pair of nodes satisfying the comparison).
  [[nodiscard]] static bool compare_equal(const Value& a, const Value& b,
                                          bool negate);
  /// op is one of '<', '>', 'l' (<=), 'g' (>=).
  [[nodiscard]] static bool compare_relational(const Value& a, const Value& b,
                                               char op);

 private:
  std::variant<NodeSet, bool, double, std::string> data_;
};

/// XPath number→string (5 -> "5", 5.5 -> "5.5", NaN -> "NaN").
[[nodiscard]] std::string number_to_string(double d);

/// XPath string→number (whitespace-trimmed decimal, else NaN).
[[nodiscard]] double string_to_number(std::string_view s);

}  // namespace navsep::xpath

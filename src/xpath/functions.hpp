// The XPath 1.0 core function library (§4).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "xpath/eval.hpp"
#include "xpath/value.hpp"

namespace navsep::xpath {

/// Invoke a core library function by name. Returns nullopt when the name is
/// not a core function (the evaluator then consults Environment::functions).
/// Throws navsep::SemanticError on arity mismatches.
[[nodiscard]] std::optional<Value> call_core_function(
    std::string_view name, const std::vector<Value>& args,
    const EvalContext& ctx);

}  // namespace navsep::xpath

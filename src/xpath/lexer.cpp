#include "xpath/lexer.hpp"

#include "common/strings.hpp"
#include "common/text_cursor.hpp"

namespace navsep::xpath {

namespace {

bool is_ncname_start(char c) noexcept {
  return strings::is_alpha(c) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_ncname_char(char c) noexcept {
  return is_ncname_start(c) || strings::is_digit(c) || c == '-' || c == '.';
}

/// Does the previous token force the next '*' / name to be an operator?
/// Per XPath 1.0 §3.7: if there is a preceding token and it is not one of
/// @, ::, (, [, an Operator, or ',', then '*' is MultiplyOperator and a
/// name is an OperatorName.
bool operator_context(const std::vector<Token>& tokens) noexcept {
  if (tokens.empty()) return false;
  switch (tokens.back().type) {
    case TokenType::At:
    case TokenType::ColonColon:
    case TokenType::LParen:
    case TokenType::LBracket:
    case TokenType::Comma:
    case TokenType::Operator:
    case TokenType::Slash:
    case TokenType::DoubleSlash:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::vector<Token> tokenize(std::string_view expr) {
  std::vector<Token> out;
  TextCursor cur(expr);

  for (;;) {
    cur.skip_ws();
    Position pos = cur.position();
    if (cur.eof()) {
      out.push_back(Token{TokenType::End, "", 0, pos});
      return out;
    }
    char c = cur.peek();

    // Literals.
    if (c == '\'' || c == '"') {
      cur.advance();
      std::string_view body = cur.take_until(std::string_view(&c, 1));
      cur.advance();  // closing quote
      out.push_back(Token{TokenType::Literal, std::string(body), 0, pos});
      continue;
    }

    // Numbers: digits, or '.' followed by a digit.
    if (strings::is_digit(c) ||
        (c == '.' && strings::is_digit(cur.peek(1)))) {
      std::string text;
      text += std::string(cur.take_while(strings::is_digit));
      if (cur.peek() == '.' && strings::is_digit(cur.peek(1))) {
        cur.advance();
        text += '.';
        text += std::string(cur.take_while(strings::is_digit));
      } else if (cur.peek() == '.' && text.empty()) {
        // ".5" — leading dot already detected above.
      }
      if (text.empty() && cur.consume('.')) {
        text = "0.";
        text += std::string(cur.take_while(strings::is_digit));
      }
      out.push_back(
          Token{TokenType::Number, text, std::stod(text), pos});
      continue;
    }

    // Variables.
    if (c == '$') {
      cur.advance();
      if (!is_ncname_start(cur.peek())) cur.fail("expected variable name");
      std::string name(cur.take_while(is_ncname_char));
      if (cur.peek() == ':' && cur.peek(1) != ':') {
        cur.advance();
        name += ':';
        name += std::string(cur.take_while(is_ncname_char));
      }
      out.push_back(Token{TokenType::Variable, name, 0, pos});
      continue;
    }

    // Names (possibly qualified), which may turn into operator names,
    // axis names or function names depending on what follows.
    if (is_ncname_start(c)) {
      std::string name(cur.take_while(is_ncname_char));
      bool op_ctx = operator_context(out);
      if (op_ctx &&
          (name == "and" || name == "or" || name == "div" || name == "mod")) {
        out.push_back(Token{TokenType::Operator, name, 0, pos});
        continue;
      }
      // QName continuation: "prefix:local" or "prefix:*".
      if (cur.peek() == ':' && cur.peek(1) != ':') {
        cur.advance();
        if (cur.peek() == '*') {
          cur.advance();
          out.push_back(Token{TokenType::Name, name + ":*", 0, pos});
          continue;
        }
        if (!is_ncname_start(cur.peek())) cur.fail("expected local name");
        name += ':';
        name += std::string(cur.take_while(is_ncname_char));
      }
      cur.skip_ws();
      if (cur.peek() == ':' && cur.peek(1) == ':') {
        out.push_back(Token{TokenType::AxisName, name, 0, pos});
        continue;
      }
      if (cur.peek() == '(') {
        out.push_back(Token{TokenType::FunctionName, name, 0, pos});
        continue;
      }
      out.push_back(Token{TokenType::Name, name, 0, pos});
      continue;
    }

    // Symbols.
    cur.advance();
    switch (c) {
      case '(': out.push_back(Token{TokenType::LParen, "(", 0, pos}); break;
      case ')': out.push_back(Token{TokenType::RParen, ")", 0, pos}); break;
      case '[': out.push_back(Token{TokenType::LBracket, "[", 0, pos}); break;
      case ']': out.push_back(Token{TokenType::RBracket, "]", 0, pos}); break;
      case ',': out.push_back(Token{TokenType::Comma, ",", 0, pos}); break;
      case '@': out.push_back(Token{TokenType::At, "@", 0, pos}); break;
      case '|': out.push_back(Token{TokenType::Operator, "|", 0, pos}); break;
      case '+': out.push_back(Token{TokenType::Operator, "+", 0, pos}); break;
      case '-': out.push_back(Token{TokenType::Operator, "-", 0, pos}); break;
      case '=': out.push_back(Token{TokenType::Operator, "=", 0, pos}); break;
      case '*':
        if (operator_context(out)) {
          out.push_back(Token{TokenType::Operator, "*", 0, pos});
        } else {
          out.push_back(Token{TokenType::Star, "*", 0, pos});
        }
        break;
      case '/':
        if (cur.consume('/')) {
          out.push_back(Token{TokenType::DoubleSlash, "//", 0, pos});
        } else {
          out.push_back(Token{TokenType::Slash, "/", 0, pos});
        }
        break;
      case '!':
        if (!cur.consume('=')) {
          throw ParseError("stray '!' (did you mean '!=' ?)", pos);
        }
        out.push_back(Token{TokenType::Operator, "!=", 0, pos});
        break;
      case '<':
        out.push_back(Token{TokenType::Operator,
                            cur.consume('=') ? "<=" : "<", 0, pos});
        break;
      case '>':
        out.push_back(Token{TokenType::Operator,
                            cur.consume('=') ? ">=" : ">", 0, pos});
        break;
      case ':':
        if (!cur.consume(':')) throw ParseError("stray ':'", pos);
        out.push_back(Token{TokenType::ColonColon, "::", 0, pos});
        break;
      case '.':
        if (cur.consume('.')) {
          out.push_back(Token{TokenType::DotDot, "..", 0, pos});
        } else {
          out.push_back(Token{TokenType::Dot, ".", 0, pos});
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         pos);
    }
  }
}

}  // namespace navsep::xpath

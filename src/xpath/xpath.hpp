// Umbrella header for the XPath engine.
#pragma once

#include "xpath/ast.hpp"     // IWYU pragma: export
#include "xpath/eval.hpp"    // IWYU pragma: export
#include "xpath/parser.hpp"  // IWYU pragma: export
#include "xpath/value.hpp"   // IWYU pragma: export

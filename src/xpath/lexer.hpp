// Tokenizer for XPath 1.0 expressions.
//
// Implements the lexical disambiguation rules of XPath 1.0 §3.7: `*` is the
// multiply operator only when the preceding token admits an operator, and
// the words and/or/div/mod are operator names in the same positions;
// a name followed by '(' is a function name; a name followed by '::' is an
// axis name.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace navsep::xpath {

enum class TokenType {
  End,
  Number,      // 12, 12.5, .5
  Literal,     // '...' or "..."
  Name,        // NCName or QName (prefix:local)
  Variable,    // $name
  FunctionName,  // name followed by '('
  AxisName,    // name followed by '::'
  Star,        // * as a wildcard
  Operator,    // named operators and/or/div/mod and symbols = != < <= > >= + - * / // |
  Slash,       // /
  DoubleSlash, // //
  LParen,
  RParen,
  LBracket,
  RBracket,
  Dot,
  DotDot,
  At,
  Comma,
  ColonColon,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;
  double number = 0;
  Position pos;
};

/// Tokenize a complete expression. Throws navsep::ParseError on lexical
/// errors (unterminated literal, stray characters).
[[nodiscard]] std::vector<Token> tokenize(std::string_view expr);

}  // namespace navsep::xpath

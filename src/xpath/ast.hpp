// Abstract syntax for the XPath 1.0 subset.
//
// The AST is an immutable tree of unique_ptr-owned Expr nodes produced by
// xpath::parse_expression and consumed by the evaluator. to_string() gives
// a normalized rendering used in tests and error messages.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace navsep::xpath {

enum class Axis {
  Child,
  Descendant,
  Parent,
  Ancestor,
  FollowingSibling,
  PrecedingSibling,
  Following,
  Preceding,
  Attribute,
  Self,
  DescendantOrSelf,
  AncestorOrSelf,
};

[[nodiscard]] const char* axis_name(Axis a) noexcept;

/// What a step selects on its axis.
struct NodeTest {
  enum class Kind {
    Name,     // QName or NCName
    AnyName,  // *
    Text,     // text()
    Comment,  // comment()
    Pi,       // processing-instruction()
    AnyNode,  // node()
  };
  Kind kind = Kind::AnyName;
  std::string prefix;  // for Kind::Name; resolved via the eval context
  std::string local;   // for Kind::Name, or PI target for Kind::Pi

  [[nodiscard]] std::string to_string() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Step {
  Axis axis = Axis::Child;
  NodeTest test;
  std::vector<ExprPtr> predicates;
};

enum class BinaryOp {
  Or,
  And,
  Equal,
  NotEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  Add,
  Subtract,
  Multiply,
  Divide,
  Modulo,
  Union,
};

struct Expr {
  enum class Kind {
    LocationPath,  // steps (+ absolute flag)
    Filter,        // primary expr + predicates + optional trailing steps
    Binary,
    Negate,        // unary minus
    Literal,       // string literal
    Number,
    Variable,
    FunctionCall,
  };

  Kind kind;

  // LocationPath / Filter
  bool absolute = false;
  std::vector<Step> steps;
  ExprPtr primary;                  // Filter
  std::vector<ExprPtr> predicates;  // Filter

  // Binary / Negate
  BinaryOp op = BinaryOp::Or;
  ExprPtr lhs;
  ExprPtr rhs;

  // Literal / Number / Variable / FunctionCall
  std::string string_value;
  double number_value = 0;
  std::vector<ExprPtr> args;

  explicit Expr(Kind k) : kind(k) {}

  [[nodiscard]] std::string to_string() const;
};

}  // namespace navsep::xpath

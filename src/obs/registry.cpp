#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace navsep::obs {

std::size_t log2_bucket(std::uint64_t value) noexcept {
  std::size_t bucket = 0;
  while (value > 1 && bucket + 1 < kLog2Buckets) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

double log2_interpolated_quantile(const std::uint64_t* counts,
                                  std::size_t n_buckets, std::uint64_t count,
                                  std::uint64_t max_value, double q) noexcept {
  if (count == 0 || n_buckets == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // The edges are exact, never interpolated. q >= 1 is the maximum
  // sample itself — including 0 when every sample was 0 (every tracked
  // histogram maintains max; interpolating here used to report ~2 for an
  // all-zero population). q <= 0 is the minimum's bucket lower bound:
  // the tightest statement a log2 sketch can make about the smallest
  // sample (0 for bucket 0, 2^i otherwise).
  if (q >= 1.0) return static_cast<double>(max_value);
  if (q <= 0.0) {
    for (std::size_t i = 0; i < n_buckets; ++i) {
      if (counts[i] != 0) {
        return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      }
    }
    return 0.0;
  }
  const double rank = q * static_cast<double>(count - 1);
  double seen = 0.0;
  for (std::size_t i = 0; i < n_buckets; ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c == 0.0) continue;
    if (seen + c > rank) {
      // The rank-th sample sits in bucket i, covering [2^i, 2^(i+1)).
      // Place it linearly by its position among this bucket's samples
      // (+0.5 centers each sample in its share of the range) instead
      // of reporting the bucket's upper bound.
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac = (rank - seen + 0.5) / c;
      double v = lo + frac * (hi - lo);
      if (max_value > 0) v = std::min(v, static_cast<double>(max_value));
      return v;
    }
    seen += c;
  }
  // rank == count - 1 exactly at the end: the maximum sample.
  if (max_value > 0) return static_cast<double>(max_value);
  for (std::size_t i = n_buckets; i-- > 0;) {
    if (counts[i] != 0) return std::ldexp(1.0, static_cast<int>(i) + 1);
  }
  return 0.0;
}

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[log2_bucket(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::absorb(const std::uint64_t* counts, std::size_t n_buckets,
                       std::uint64_t count, std::uint64_t sum,
                       std::uint64_t max) noexcept {
  for (std::size_t i = 0; i < n_buckets; ++i) {
    if (counts[i] == 0) continue;
    const std::size_t slot = std::min(i, kLog2Buckets - 1);
    buckets_[slot].fetch_add(counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (max > seen &&
         !max_.compare_exchange_weak(seen, max, std::memory_order_relaxed)) {
  }
}

HistogramView Histogram::view() const noexcept {
  HistogramView out;
  for (std::size_t i = 0; i < kLog2Buckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  return out;
}

SamplerHandle::SamplerHandle(SamplerHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
  other.id_ = 0;
}

SamplerHandle& SamplerHandle::operator=(SamplerHandle&& other) noexcept {
  if (this != &other) {
    reset();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void SamplerHandle::reset() noexcept {
  if (registry_ != nullptr) {
    registry_->remove_sampler(id_);
    registry_ = nullptr;
    id_ = 0;
  }
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

SamplerHandle Registry::add_sampler(Sampler sampler) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_sampler_id_++;
  samplers_.emplace(id, std::move(sampler));
  return SamplerHandle(this, id);
}

void Registry::remove_sampler(std::uint64_t id) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  samplers_.erase(id);
}

Registry::Snapshot Registry::snapshot() const {
  // Copy the samplers out, then run them unlocked: a sampler calls
  // back into counter()/gauge() to publish its producer's stats, and
  // that re-entry must not deadlock.
  std::vector<Sampler> samplers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    samplers.reserve(samplers_.size());
    for (const auto& [id, sampler] : samplers_) samplers.push_back(sampler);
  }
  for (const auto& sampler : samplers) sampler();

  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) out.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) out.histograms[name] = h->view();
  }
  out.spans_recorded = spans_.recorded();
  out.spans_dropped = spans_.dropped();
  return out;
}

namespace {

void append_json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_json_double(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  std::ostringstream tmp;
  tmp << std::fixed << std::setprecision(1) << v;
  os << tmp.str();
}

}  // namespace

std::string Registry::Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n    " : ",\n    ");
    append_json_string(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    append_json_string(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, view] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    append_json_string(os, name);
    os << ": {\"count\": " << view.count << ", \"sum\": " << view.sum
       << ", \"max\": " << view.max << ", \"mean\": ";
    append_json_double(os, view.mean());
    os << ", \"p50\": ";
    append_json_double(os, view.quantile(0.5));
    os << ", \"p90\": ";
    append_json_double(os, view.quantile(0.9));
    os << ", \"p99\": ";
    append_json_double(os, view.quantile(0.99));
    os << "}";
    first = false;
  }
  os << (first ? "},\n" : "\n  },\n");
  os << "  \"spans\": {\"recorded\": " << spans_recorded
     << ", \"dropped\": " << spans_dropped << "}\n}\n";
  return os.str();
}

std::string Registry::Snapshot::to_table() const {
  std::size_t width = 8;
  for (const auto& [name, value] : counters) width = std::max(width, name.size());
  for (const auto& [name, value] : gauges) width = std::max(width, name.size());
  for (const auto& [name, view] : histograms) {
    width = std::max(width, name.size());
  }

  std::ostringstream os;
  if (!counters.empty()) {
    os << "counters\n";
    for (const auto& [name, value] : counters) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << name
         << "  " << value << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges\n";
    for (const auto& [name, value] : gauges) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << name
         << "  " << value << "\n";
    }
  }
  if (!histograms.empty()) {
    os << "histograms (count / mean / p50 / p99 / max)\n";
    for (const auto& [name, view] : histograms) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << name
         << "  " << view.count << " / " << std::fixed << std::setprecision(1)
         << view.mean() << " / " << view.quantile(0.5) << " / "
         << view.quantile(0.99) << " / " << view.max << "\n";
    }
  }
  os << "spans: " << spans_recorded << " recorded, " << spans_dropped
     << " dropped\n";
  return os.str();
}

}  // namespace navsep::obs

#include "obs/trace.hpp"

#include <algorithm>

namespace navsep::obs {

std::vector<std::pair<std::string, std::uint64_t>> TraceAggregate::top_pages(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> out(page_views.begin(),
                                                         page_views.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace navsep::obs

#include "obs/trace.hpp"

#include <algorithm>

namespace navsep::obs {

std::vector<std::pair<std::string, std::uint64_t>> TraceAggregate::top_pages(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> out(page_views.begin(),
                                                         page_views.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<HotEntry> TraceAggregate::top_entries(std::size_t n) const {
  std::vector<HotEntry> out;
  out.reserve(profile_page_views.size() + page_views.size());
  // page_views counts every hit; the profiled share ranks per
  // (page, profile) row, the remainder is base-layer heat and ranks as
  // an empty-profile row — warm()'s base-layer key shape.
  std::map<std::string, std::uint64_t> profiled;
  for (const auto& [key, views] : profile_page_views) {
    out.push_back(HotEntry{key.second, key.first, views});
    profiled[key.second] += views;
  }
  for (const auto& [page, views] : page_views) {
    auto it = profiled.find(page);
    const std::uint64_t base =
        it == profiled.end() ? views
                             : (views > it->second ? views - it->second : 0);
    if (base > 0) out.push_back(HotEntry{page, "", base});
  }
  std::sort(out.begin(), out.end(), [](const HotEntry& a, const HotEntry& b) {
    if (a.views != b.views) return a.views > b.views;
    if (a.page != b.page) return a.page < b.page;
    return a.profile < b.profile;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace navsep::obs

// Epoch-scoped pipeline tracing.
//
// A Span is one timed stage of the publish pipeline — plan, wave
// compute, commit, publish, repl encode/ship/apply — stamped with the
// epoch it is working toward and the thread lane it ran on. Because
// every stage carries the epoch, one edit burst can be traced
// end-to-end: filter the log by epoch and the spans line up from
// `commit_batch()` on the origin to `publish()` on a replica.
//
// SpanLog is a bounded mutex-guarded ring: recording is O(1), the
// oldest spans are overwritten when full, and `dropped()` says how
// many fell off. Spans record on the *control* path (builds,
// publishes, replication frames — dozens per second, not millions),
// so a short critical section per span is cheap; the serve hot path
// never touches the span log.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace navsep::obs {

/// Monotonic nanoseconds for span timestamps (steady_clock, so spans
/// order correctly across threads in one process).
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A compact identifier for the recording thread — not the OS tid,
/// just a stable small hash so spans from the same thread group
/// together in a dump.
[[nodiscard]] inline std::uint32_t thread_lane() noexcept {
  return static_cast<std::uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

struct Span {
  std::string name;         ///< stage, e.g. "build.plan", "repl.ship"
  std::uint64_t epoch = 0;  ///< snapshot epoch the stage works toward
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t lane = 0;  ///< thread_lane() of the recording thread

  [[nodiscard]] std::uint64_t duration_ns() const noexcept {
    return end_ns >= begin_ns ? end_ns - begin_ns : 0;
  }
};

/// Bounded ring of completed spans, oldest-overwritten.
class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit SpanLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(Span span) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(span));
    } else {
      ring_[head_] = std::move(span);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
    ++recorded_;
  }

  /// All retained spans, oldest first.
  [[nodiscard]] std::vector<Span> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Span> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Retained spans stamped with `epoch`, oldest first.
  [[nodiscard]] std::vector<Span> for_epoch(std::uint64_t epoch) const {
    std::vector<Span> out;
    for (auto& span : events()) {
      if (span.epoch == epoch) out.push_back(std::move(span));
    }
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::vector<Span> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// RAII span: stamps begin on construction, records on destruction.
/// A null log makes it a no-op — call sites don't branch on whether
/// telemetry is attached.
class ScopedSpan {
 public:
  ScopedSpan(SpanLog* log, std::string name, std::uint64_t epoch)
      : log_(log) {
    if (log_ != nullptr) {
      span_.name = std::move(name);
      span_.epoch = epoch;
      span_.lane = thread_lane();
      span_.begin_ns = monotonic_ns();
    }
  }
  ~ScopedSpan() {
    if (log_ != nullptr) {
      span_.end_ns = monotonic_ns();
      log_->record(std::move(span_));
    }
  }

  /// Re-stamp the epoch mid-span — for stages that only learn which
  /// epoch they worked toward from their own result (a replica decoding
  /// a frame, say).
  void set_epoch(std::uint64_t epoch) noexcept { span_.epoch = epoch; }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanLog* log_;
  Span span_;
};

}  // namespace navsep::obs

// obs::Registry — the unified metrics surface of the serving stack.
//
// Every layer of the pipeline keeps counters: the concurrent server's
// shard stats, the build graph's rebuild reports, the snapshot store's
// publish count, the replication wire's frame/byte tallies, the
// workload driver's latency tallies. Before this module each had its
// own `stats()` shape and nothing could sample the system as a whole.
// The registry gives them one home:
//
//   * named Counters (monotonic, wait-free atomic add),
//   * named Gauges (last-written value, wait-free atomic set),
//   * named log2 Histograms (48 power-of-two buckets, wait-free
//     atomic record — the same bucketing serve::LatencyHistogram uses),
//   * registered samplers: pull hooks that refresh mirror gauges from
//     an existing stats() producer at snapshot time, so legacy counter
//     structs keep working while the registry stays the source of one
//     coherent, samplable view,
//   * a SpanLog (obs/span.hpp) for epoch-scoped pipeline tracing.
//
// Cost model: instrument handles are stable references resolved once
// (one mutex-guarded map probe at registration); the hot path is a
// relaxed atomic RMW per event — safe from any thread, wait-free, and
// absent entirely when a layer has no registry attached (telemetry is
// a nullable pointer everywhere, never a mandatory dependency).
//
// snapshot() produces a point-in-time copy (running samplers first,
// outside the registry lock) and the exporters serialize it:
// to_json() for machines (tools/navsep_stats, navsep_replica --obs),
// to_table() for terminals.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace navsep::obs {

/// Monotonic event count. Wait-free; never decreases.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (cache residency, current epoch...).
/// Wait-free; samplers typically set() these from a producer's stats().
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// How many log2 buckets every histogram in the system carries: bucket
/// i holds samples in [2^i, 2^(i+1)) — 48 buckets span 1ns .. ~3.2 days
/// in nanoseconds, or 1 .. 2^48 of anything else.
inline constexpr std::size_t kLog2Buckets = 48;

/// The bucket a value lands in (0 for value == 0).
[[nodiscard]] std::size_t log2_bucket(std::uint64_t value) noexcept;

/// Interpolated quantile over log2 bucket counts: the q-quantile rank
/// is located in its bucket and positioned linearly within the bucket's
/// [2^i, 2^(i+1)) range by its rank among that bucket's samples —
/// instead of reporting the bucket's upper bound, which overstates
/// every quantile that lands just past a boundary by up to 2x. The
/// result is clamped to `max_value` when the true maximum is known
/// (pass 0 when it is not). Returns 0 for an empty histogram.
[[nodiscard]] double log2_interpolated_quantile(const std::uint64_t* counts,
                                                std::size_t n_buckets,
                                                std::uint64_t count,
                                                std::uint64_t max_value,
                                                double q) noexcept;

/// A point-in-time copy of one histogram, with derived statistics.
struct HistogramView {
  std::array<std::uint64_t, kLog2Buckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(count);
  }
  [[nodiscard]] double quantile(double q) const noexcept {
    return log2_interpolated_quantile(buckets.data(), buckets.size(), count,
                                      max, q);
  }
};

/// Concurrent log2 histogram. record() is three relaxed atomic RMWs
/// plus a CAS loop for the max — safe from any thread, no locks.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept;

  /// Fold pre-bucketed counts in (merging a per-session
  /// serve::LatencyHistogram, say): bucket-by-bucket adds plus the
  /// count/sum/max updates. `n_buckets` beyond kLog2Buckets fold into
  /// the last bucket.
  void absorb(const std::uint64_t* counts, std::size_t n_buckets,
              std::uint64_t count, std::uint64_t sum,
              std::uint64_t max) noexcept;

  [[nodiscard]] HistogramView view() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kLog2Buckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class Registry;

/// RAII registration token for a sampler: unregisters on destruction.
/// The registry must outlive the handle (producers hold their handle —
/// and usually a shared_ptr to the registry — so destruction order is
/// producer, then registry).
class SamplerHandle {
 public:
  SamplerHandle() = default;
  SamplerHandle(SamplerHandle&& other) noexcept;
  SamplerHandle& operator=(SamplerHandle&& other) noexcept;
  ~SamplerHandle() { reset(); }
  SamplerHandle(const SamplerHandle&) = delete;
  SamplerHandle& operator=(const SamplerHandle&) = delete;

  /// Unregister now (idempotent).
  void reset() noexcept;

  [[nodiscard]] bool attached() const noexcept { return registry_ != nullptr; }

 private:
  friend class Registry;
  SamplerHandle(Registry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}
  Registry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create by name. The returned reference is stable for the
  /// registry's lifetime — resolve once, then hit the atomic directly.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// A pull hook run at the start of every snapshot(), outside the
  /// registry lock (it may freely call counter()/gauge()/histogram()).
  /// Producers use this to mirror an existing stats() struct into
  /// gauges so one snapshot samples every layer coherently.
  using Sampler = std::function<void()>;
  [[nodiscard]] SamplerHandle add_sampler(Sampler sampler);

  /// The epoch-scoped pipeline trace ring (obs/span.hpp).
  [[nodiscard]] SpanLog& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanLog& spans() const noexcept { return spans_; }

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramView> histograms;
    std::uint64_t spans_recorded = 0;
    std::uint64_t spans_dropped = 0;

    /// Machine exporter: {"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, max, mean, p50, p90, p99}},
    /// "spans": {recorded, dropped}}.
    [[nodiscard]] std::string to_json() const;

    /// Terminal exporter: aligned name/value rows per section.
    [[nodiscard]] std::string to_table() const;
  };

  /// Run every sampler, then copy all instruments out. The copy itself
  /// holds the registry lock briefly; concurrent add()/record() calls
  /// are never blocked (they are lock-free), so sampling a system under
  /// full traffic is safe and cheap.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class SamplerHandle;
  void remove_sampler(std::uint64_t id) noexcept;

  mutable std::mutex mutex_;
  // unique_ptr values: instrument addresses survive map rehash/rebalance.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::uint64_t, Sampler> samplers_;
  std::uint64_t next_sampler_id_ = 1;
  SpanLog spans_;
};

}  // namespace navsep::obs

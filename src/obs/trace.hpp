// Per-session navigation trace capture.
//
// A Workload session is one simulated visitor following arcs through
// the museum. With tracing on, each step it takes is recorded into a
// TraceRing owned by that session alone — single-writer, no atomics,
// no locks, bounded — so capture costs one array store per sampled
// step and the serve path stays wait-free. After the sessions join,
// TraceAggregate::absorb() folds every ring into per-page and
// per-(arc, role) popularity tables: exactly the substrate the
// ROADMAP's landmark-synthesis and predictive-warming items consume.
//
// Sampling: TraceConfig::sample_every records every Nth step
// (sample_every == 1 is full capture). The ring overwrites its oldest
// event when full and counts the drops, so memory is bounded no
// matter how long a session runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

namespace navsep::obs {

/// One navigation step as a session saw it.
struct TraceEvent {
  std::string from;     ///< page the session was on ("" at entry)
  std::string to;       ///< page it requested
  std::string role;     ///< arc role followed ("" for direct entry)
  std::string profile;  ///< profile lens, "" for base pages
  std::uint64_t epoch = 0;       ///< snapshot epoch that served it
  std::uint64_t latency_ns = 0;  ///< observed serve latency
  bool ok = true;                ///< request succeeded
};

/// Capture knobs, carried in WorkloadOptions.
struct TraceConfig {
  bool enabled = false;            ///< master switch: off = zero cost
  std::uint32_t sample_every = 1;  ///< record every Nth step (>= 1)
  std::size_t ring_capacity = 1024;  ///< events retained per session
};

/// Bounded single-writer ring of TraceEvents. Owned by exactly one
/// session thread while it runs; readers (the aggregator) only look
/// after the writer joins. Oldest events are overwritten when full.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(TraceEvent event) {
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[head_] = std::move(event);
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
    ++recorded_;
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// An arc as the popularity table keys it: who linked where, and via
/// which role.
struct ArcKey {
  std::string from;
  std::string to;
  std::string role;

  [[nodiscard]] bool operator<(const ArcKey& other) const noexcept {
    return std::tie(from, to, role) <
           std::tie(other.from, other.to, other.role);
  }
  [[nodiscard]] bool operator==(const ArcKey& other) const noexcept {
    return from == other.from && to == other.to && role == other.role;
  }
};

/// One ranked (page, profile) heat entry — the unit the cache warmer
/// pre-renders and the landmark scorer weighs. An empty profile means
/// base-layer traffic.
struct HotEntry {
  std::string page;
  std::string profile;
  std::uint64_t views = 0;
};

/// Post-run popularity tables folded from every session's ring.
struct TraceAggregate {
  std::map<std::string, std::uint64_t> page_views;  ///< to-page → hits
  std::map<ArcKey, std::uint64_t> arc_follows;  ///< (from,to,role) → hits
  /// (profile, to-page) → hits, for profile-scoped traffic only: the
  /// overlay-layer heat map predictive warming draws from.
  std::map<std::pair<std::string, std::string>, std::uint64_t>
      profile_page_views;
  std::uint64_t events = 0;    ///< events absorbed (retained in rings)
  std::uint64_t failures = 0;  ///< absorbed events with ok == false
  std::uint64_t recorded = 0;  ///< total ring records incl. overwritten
  std::uint64_t dropped = 0;   ///< events overwritten before absorb

  void absorb(const TraceRing& ring) {
    for (const auto& event : ring.events()) {
      ++events;
      if (!event.ok) ++failures;
      ++page_views[event.to];
      if (!event.profile.empty()) {
        ++profile_page_views[{event.profile, event.to}];
      }
      if (!event.role.empty()) {
        ++arc_follows[ArcKey{event.from, event.to, event.role}];
      }
    }
    recorded += ring.recorded();
    dropped += ring.dropped();
  }

  /// The n most-viewed pages, hottest first (ties by name).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> top_pages(
      std::size_t n) const;

  /// The n hottest (page, profile) entries across BOTH serving layers,
  /// hottest first (ties by page then profile name — fully
  /// deterministic). Profiled traffic ranks per (page, profile) row;
  /// base-layer traffic (page_views not attributable to any profile)
  /// ranks as rows with an empty profile — exactly the key shape
  /// ConcurrentServer::warm() takes, so the vector is a ready warming
  /// feed.
  [[nodiscard]] std::vector<HotEntry> top_entries(std::size_t n) const;
};

}  // namespace navsep::obs

#include "core/linkbase.hpp"

#include <map>

#include "uri/uri.hpp"

namespace navsep::core {

namespace {

std::string default_data_href(std::string_view node_id) {
  return "data/" + std::string(node_id) + ".xml";
}

std::string default_structure_href(std::string_view page_id) {
  // "index:paintings" -> "paintings-index.xml"
  std::string name(page_id);
  if (std::size_t colon = name.find(':'); colon != std::string::npos) {
    name = name.substr(colon + 1) + "-index";
  }
  return name + ".xml";
}

bool is_structure_page(std::string_view id) {
  return id.rfind("index:", 0) == 0;
}

}  // namespace

std::unique_ptr<xml::Document> build_linkbase(
    const hypermedia::AccessStructure& structure,
    const LinkbaseOptions& options) {
  auto data_href = options.data_href ? options.data_href : default_data_href;
  auto structure_href = options.structure_href ? options.structure_href
                                               : default_structure_href;

  auto doc = std::make_unique<xml::Document>();
  doc->set_base_uri(options.base_uri);

  xml::Element& root = doc->set_root(xml::QName("links"));
  root.set_attribute("xmlns:xlink", std::string(xlink::kNamespace));

  xml::Element& link = root.append_element("structure");
  auto xattr = [](xml::Element& e, std::string_view local,
                  std::string_view value) {
    e.set_attribute_ns(
        xml::QName("xlink", std::string(local), std::string(xlink::kNamespace)),
        value);
  };
  xattr(link, "type", "extended");
  xattr(link, "role", std::string(to_string(structure.kind())));
  xattr(link, "title", structure.name());

  // Locators: every endpoint referenced by any arc, labeled by node id.
  std::vector<hypermedia::AccessArc> arcs = structure.arcs();
  std::map<std::string, std::string> endpoints;  // id -> href, insert-ordered
  std::vector<std::string> endpoint_order;
  auto note_endpoint = [&](const std::string& id, std::string_view title) {
    if (endpoints.find(id) != endpoints.end()) return;
    std::string href =
        is_structure_page(id) ? structure_href(id) : data_href(id);
    endpoints.emplace(id, std::move(href));
    endpoint_order.push_back(id);
    (void)title;
  };
  // Members first (stable, human-friendly order), then structure pages.
  for (const auto& m : structure.members()) note_endpoint(m.node_id, m.title);
  for (const auto& a : arcs) {
    note_endpoint(a.from, "");
    note_endpoint(a.to, "");
  }

  std::map<std::string, std::string> titles;
  for (const auto& m : structure.members()) titles[m.node_id] = m.title;

  for (const std::string& id : endpoint_order) {
    xml::Element& loc = link.append_element("loc");
    xattr(loc, "type", "locator");
    xattr(loc, "href", endpoints[id]);
    xattr(loc, "label", id);
    auto t = titles.find(id);
    xattr(loc, "title", t != titles.end() ? t->second : id);
  }

  // Arcs: one per materialized access arc, in structure order.
  for (const auto& a : arcs) {
    xml::Element& go = link.append_element("go");
    xattr(go, "type", "arc");
    xattr(go, "from", a.from);
    xattr(go, "to", a.to);
    xattr(go, "arcrole", std::string(kNavArcrolePrefix) + a.role);
    xattr(go, "title", a.title);
    xattr(go, "show", "replace");
    xattr(go, "actuate", "onRequest");
  }
  return doc;
}

xlink::TraversalGraph load_linkbase(const xml::Document& doc) {
  return xlink::TraversalGraph::from_linkbase(doc);
}

std::vector<hypermedia::AccessArc> arcs_from_graph(
    const xlink::TraversalGraph& graph,
    const std::function<std::string(std::string_view uri)>& id_for) {
  auto default_id_for = [](std::string_view u) -> std::string {
    uri::Uri parsed = uri::parse(u);
    if (parsed.fragment && !parsed.fragment->empty()) return *parsed.fragment;
    std::string path = parsed.path;
    if (std::size_t slash = path.rfind('/'); slash != std::string::npos) {
      path = path.substr(slash + 1);
    }
    if (std::size_t dot = path.rfind('.'); dot != std::string::npos) {
      path = path.substr(0, dot);
    }
    // Reverse the two structure-page mappings:
    //   default_structure_href: "index:paintings" -> "paintings-index.xml"
    //   default_href_for:       "index:paintings" -> "index-paintings.html"
    constexpr std::string_view kSuffix = "-index";
    if (path.size() > kSuffix.size() &&
        path.compare(path.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
            0) {
      return "index:" + path.substr(0, path.size() - kSuffix.size());
    }
    constexpr std::string_view kPrefix = "index-";
    if (path.size() > kPrefix.size() &&
        path.compare(0, kPrefix.size(), kPrefix) == 0) {
      return "index:" + path.substr(kPrefix.size());
    }
    return path;
  };

  std::vector<hypermedia::AccessArc> out;
  for (const xlink::Arc& arc : graph.arcs()) {
    if (arc.arcrole.rfind(kNavArcrolePrefix, 0) != 0) continue;
    hypermedia::AccessArc a;
    a.from = id_for ? id_for(arc.from.uri) : default_id_for(arc.from.uri);
    a.to = id_for ? id_for(arc.to.uri) : default_id_for(arc.to.uri);
    a.role = arc.arcrole.substr(kNavArcrolePrefix.size());
    a.title = arc.title;
    out.push_back(std::move(a));
  }
  return out;
}

// --- contextual linkbases ------------------------------------------------------

std::unique_ptr<xml::Document> build_context_linkbase(
    const hypermedia::ContextFamily& family,
    const hypermedia::NavigationalModel& model,
    const LinkbaseOptions& options) {
  return build_context_linkbase(
      family,
      [&model](std::string_view id) {
        const hypermedia::NavNode* node = model.node(id);
        return node != nullptr ? node->title() : std::string(id);
      },
      options);
}

std::unique_ptr<xml::Document> build_context_linkbase(
    const hypermedia::ContextFamily& family,
    const std::function<std::string(std::string_view node_id)>& title_of,
    const LinkbaseOptions& options) {
  auto data_href = options.data_href ? options.data_href : default_data_href;

  auto doc = std::make_unique<xml::Document>();
  doc->set_base_uri(options.base_uri);
  xml::Element& root = doc->set_root(xml::QName("links"));
  root.set_attribute("xmlns:xlink", std::string(xlink::kNamespace));
  root.set_attribute("xmlns:nav", std::string(kNavExtensionNamespace));

  auto xattr = [](xml::Element& e, std::string_view local,
                  std::string_view value) {
    e.set_attribute_ns(
        xml::QName("xlink", std::string(local), std::string(xlink::kNamespace)),
        value);
  };
  auto navattr = [](xml::Element& e, std::string_view local,
                    std::string_view value) {
    e.set_attribute_ns(xml::QName("nav", std::string(local),
                                  std::string(kNavExtensionNamespace)),
                       value);
  };

  for (const hypermedia::NavigationalContext& ctx : family.contexts()) {
    xml::Element& link = root.append_element("tour");
    xattr(link, "type", "extended");
    xattr(link, "role", "GuidedTour");
    xattr(link, "title", ctx.qualified_name());
    navattr(link, "context", ctx.qualified_name());

    for (const std::string& id : ctx.node_ids()) {
      xml::Element& loc = link.append_element("loc");
      xattr(loc, "type", "locator");
      xattr(loc, "href", data_href(id));
      xattr(loc, "label", id);
      xattr(loc, "title", title_of(id));
    }

    const auto& ids = ctx.node_ids();
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      xml::Element& fwd = link.append_element("go");
      xattr(fwd, "type", "arc");
      xattr(fwd, "from", ids[i]);
      xattr(fwd, "to", ids[i + 1]);
      xattr(fwd, "arcrole",
            std::string(kNavArcrolePrefix) +
                std::string(hypermedia::roles::kNext));
      xattr(fwd, "title", "Next: " + title_of(ids[i + 1]));
      navattr(fwd, "context", ctx.qualified_name());

      xml::Element& bwd = link.append_element("go");
      xattr(bwd, "type", "arc");
      xattr(bwd, "from", ids[i + 1]);
      xattr(bwd, "to", ids[i]);
      xattr(bwd, "arcrole",
            std::string(kNavArcrolePrefix) +
                std::string(hypermedia::roles::kPrev));
      xattr(bwd, "title", "Previous: " + title_of(ids[i]));
      navattr(bwd, "context", ctx.qualified_name());
    }
  }
  return doc;
}

std::vector<ContextualArc> contextual_arcs_from_graph(
    const xlink::TraversalGraph& graph,
    const std::function<std::string(std::string_view uri)>& id_for) {
  std::vector<hypermedia::AccessArc> plain = arcs_from_graph(graph, id_for);
  // arcs_from_graph preserves graph order over nav-arcrole arcs, so zip
  // the origins back in a second pass.
  std::vector<ContextualArc> out;
  out.reserve(plain.size());
  std::size_t i = 0;
  for (const xlink::Arc& arc : graph.arcs()) {
    if (arc.arcrole.rfind(kNavArcrolePrefix, 0) != 0) continue;
    ContextualArc ca;
    ca.ordinal = i;
    ca.arc = plain[i++];
    ca.origin = arc.origin;
    if (arc.origin != nullptr) {
      ca.context = std::string(
          arc.origin->attribute_ns(kNavExtensionNamespace, "context")
              .value_or(""));
    }
    out.push_back(std::move(ca));
  }
  return out;
}

}  // namespace navsep::core

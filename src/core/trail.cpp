#include "core/trail.hpp"

#include "common/strings.hpp"
#include "xml/dom.hpp"

namespace navsep::core {

std::vector<std::string> Trail::recent(std::size_t n) const {
  const auto& all = *steps_;
  std::vector<std::string> out;
  std::size_t start = all.size() > n ? all.size() - n : 0;
  for (std::size_t i = start; i < all.size(); ++i) {
    out.push_back(all[i].node_id);
  }
  return out;
}

std::shared_ptr<aop::Aspect> TrailAspect::create(Trail trail,
                                                 bool render_breadcrumbs,
                                                 std::size_t breadcrumb_length,
                                                 int precedence) {
  auto aspect = std::make_shared<aop::Aspect>("trail", precedence);

  Trail recorder = trail;
  aspect->before(
      "traverse(*)",
      [recorder](aop::JoinPointContext& ctx) {
        const aop::JoinPoint& jp = ctx.join_point();
        recorder.steps_->push_back(
            TrailStep{jp.instance, std::string(jp.tag(aop::tags::kRole)),
                      std::string(jp.tag(aop::tags::kContext))});
      },
      "record every link traversal");

  if (render_breadcrumbs) {
    Trail reader = trail;
    aspect->after(
        "compose(*)",
        [reader, breadcrumb_length](aop::JoinPointContext& ctx) {
          auto* slot = ctx.payload_as<xml::Element*>();
          if (slot == nullptr || *slot == nullptr) return;
          std::vector<std::string> crumbs = reader.recent(breadcrumb_length);
          if (crumbs.empty()) return;
          xml::Element& p = (*slot)->append_element("p");
          p.set_attribute("class", "trail");
          p.append_text(strings::join(
              std::vector<std::string_view>(crumbs.begin(), crumbs.end()),
              " \xE2\x86\x92 "));  // " → "
        },
        "render the breadcrumb line");
  }
  return aspect;
}

}  // namespace navsep::core

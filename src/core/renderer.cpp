#include "core/renderer.hpp"

#include "core/navigation_aspect.hpp"

namespace navsep::core {

namespace {

using hypermedia::roles::kIndexEntry;
using hypermedia::roles::kMenuEntry;
using hypermedia::roles::kNext;
using hypermedia::roles::kPrev;
using hypermedia::roles::kUp;

std::function<std::string(std::string_view)> href_or_default(
    const RenderOptions& o) {
  return o.href_for ? o.href_for : default_href_for;
}

}  // namespace

void render_node_content(html::Page& page, const hypermedia::NavNode& node) {
  page.heading(1, node.title());
  page.image(node.id() + ".jpg", node.title());
  for (const auto& [name, value] : node.visible_attributes()) {
    xml::Element& p = page.paragraph("");
    xml::Element& label = p.append_element("b");
    label.append_text(name + ": ");
    p.append_text(value);
  }
  page.rule();
}

// --- TangledRenderer ---------------------------------------------------------

TangledRenderer::TangledRenderer(const hypermedia::NavigationalModel& model,
                                 const hypermedia::AccessStructure& structure,
                                 RenderOptions options)
    : model_(&model),
      structure_(&structure),
      options_(std::move(options)),
      arcs_(structure.arcs()) {}

void TangledRenderer::embed_navigation(html::Page& page,
                                       std::string_view id) const {
  // The tangled version of NavigationInjector: the SAME markup, but
  // produced inline by the page renderer itself — navigation knowledge
  // scattered into every page (what the paper's Figures 3/4 show).
  auto href_for = href_or_default(options_);
  std::vector<const hypermedia::AccessArc*> ups, prevs, nexts, entries;
  for (const auto& arc : arcs_) {
    if (arc.from != id) continue;
    if (arc.role == kUp) {
      ups.push_back(&arc);
    } else if (arc.role == kPrev) {
      prevs.push_back(&arc);
    } else if (arc.role == kNext) {
      nexts.push_back(&arc);
    } else if (arc.role == kIndexEntry || arc.role == kMenuEntry) {
      entries.push_back(&arc);
    }
  }
  if (ups.empty() && prevs.empty() && nexts.empty() && entries.empty()) {
    return;
  }
  xml::Element& nav = page.body().append_element("div");
  nav.set_attribute("class", "navigation");
  auto anchor = [&](xml::Element& parent, const hypermedia::AccessArc& arc,
                    std::string_view cls) {
    xml::Element& a = parent.append_element("a");
    a.set_attribute("href", href_for(arc.to));
    a.set_attribute("class", cls);
    a.append_text(arc.title.empty() ? arc.to : arc.title);
  };
  for (const auto* arc : ups) anchor(nav, *arc, "nav-up");
  for (const auto* arc : prevs) anchor(nav, *arc, "nav-prev");
  for (const auto* arc : nexts) anchor(nav, *arc, "nav-next");
  if (!entries.empty()) {
    xml::Element& ul = nav.append_element("ul");
    ul.set_attribute("class", "nav-index");
    for (const auto* arc : entries) {
      anchor(ul.append_element("li"), *arc, "nav-entry");
    }
  }
}

std::string TangledRenderer::render_node_page(
    const hypermedia::NavNode& node) const {
  html::Page page(node.title());
  if (!options_.stylesheet_href.empty()) {
    page.stylesheet(options_.stylesheet_href);
  }
  render_node_content(page, node);
  embed_navigation(page, node.id());
  return page.to_string();
}

std::string TangledRenderer::render_structure_page() const {
  html::Page page(structure_->name());
  if (!options_.stylesheet_href.empty()) {
    page.stylesheet(options_.stylesheet_href);
  }
  page.heading(1, structure_->name());
  page.rule();
  embed_navigation(page, structure_->page_id());
  return page.to_string();
}

std::vector<RenderedPage> TangledRenderer::render_site() const {
  auto href_for = href_or_default(options_);
  std::vector<RenderedPage> out;
  for (const auto& member : structure_->members()) {
    const hypermedia::NavNode* node = model_->node(member.node_id);
    if (node == nullptr) continue;
    out.push_back(
        RenderedPage{href_for(node->id()), render_node_page(*node)});
  }
  out.push_back(RenderedPage{href_for(structure_->page_id()),
                             render_structure_page()});
  return out;
}

// --- SeparatedComposer ----------------------------------------------------------

SeparatedComposer::SeparatedComposer(aop::Weaver& weaver,
                                     RenderOptions options)
    : weaver_(&weaver), options_(std::move(options)) {}

html::Page SeparatedComposer::compose_node_dom(
    const hypermedia::NavNode& node, std::string_view context_tag) const {
  html::Page page(node.title());
  if (!options_.stylesheet_href.empty()) {
    page.stylesheet(options_.stylesheet_href);
  }

  aop::JoinPoint render_jp;
  render_jp.kind = aop::JoinPointKind::NodeRender;
  render_jp.subject = node.node_class().name;
  render_jp.instance = node.id();
  if (!context_tag.empty()) {
    render_jp.tags.emplace(std::string(aop::tags::kContext),
                           std::string(context_tag));
  }
  weaver_->execute(render_jp, [&] { render_node_content(page, node); });

  aop::JoinPoint compose_jp = render_jp;
  compose_jp.kind = aop::JoinPointKind::PageCompose;
  std::any payload = &page.body();
  weaver_->execute(compose_jp, &payload, [] {});
  return page;
}

std::string SeparatedComposer::compose_node_page(
    const hypermedia::NavNode& node, std::string_view context_tag) const {
  return compose_node_dom(node, context_tag).to_string();
}

html::Page SeparatedComposer::compose_structure_dom(
    std::string_view page_id, std::string_view title) const {
  html::Page page(title);
  if (!options_.stylesheet_href.empty()) {
    page.stylesheet(options_.stylesheet_href);
  }
  page.heading(1, title);
  page.rule();

  aop::JoinPoint jp;
  jp.kind = aop::JoinPointKind::IndexBuild;
  jp.subject = "AccessStructure";
  jp.instance = std::string(page_id);
  std::any payload = &page.body();
  weaver_->execute(jp, &payload, [] {});
  return page;
}

std::string SeparatedComposer::compose_structure_page(
    std::string_view page_id, std::string_view title) const {
  return compose_structure_dom(page_id, title).to_string();
}

std::vector<RenderedPage> SeparatedComposer::compose_site(
    const hypermedia::NavigationalModel& model,
    const hypermedia::AccessStructure& structure) const {
  auto href_for = href_or_default(options_);
  std::vector<RenderedPage> out;
  for (const auto& member : structure.members()) {
    const hypermedia::NavNode* node = model.node(member.node_id);
    if (node == nullptr) continue;
    out.push_back(
        RenderedPage{href_for(node->id()), compose_node_page(*node)});
  }
  out.push_back(RenderedPage{href_for(structure.page_id()),
                             compose_structure_page(structure.page_id(),
                                                    structure.name())});
  return out;
}

}  // namespace navsep::core

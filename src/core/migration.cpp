#include "core/migration.hpp"

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "xml/serializer.hpp"

namespace navsep::core {

namespace {

std::vector<Artifact> to_artifacts(std::vector<RenderedPage> pages) {
  std::vector<Artifact> out;
  out.reserve(pages.size());
  for (auto& p : pages) {
    out.emplace_back(std::move(p.path), std::move(p.content));
  }
  return out;
}

std::vector<Artifact> separated_rendered_site(
    const hypermedia::NavigationalModel& model,
    const hypermedia::AccessStructure& structure,
    const MigrationOptions& options) {
  auto linkbase = build_linkbase(structure, options.linkbase);
  xlink::TraversalGraph graph = load_linkbase(*linkbase);

  aop::Weaver weaver;
  NavigationAspectOptions nav_opts;
  nav_opts.href_for = options.render.href_for;
  weaver.register_aspect(NavigationAspect::from_linkbase(graph, nav_opts));

  SeparatedComposer composer(weaver, options.render);
  return to_artifacts(composer.compose_site(model, structure));
}

}  // namespace

std::vector<Artifact> separated_authored_artifacts(
    const hypermedia::AccessStructure& structure,
    const MigrationOptions& options) {
  std::vector<Artifact> out = options.separated_fixed_artifacts;
  auto linkbase = build_linkbase(structure, options.linkbase);
  out.emplace_back("links.xml",
                   xml::write(*linkbase, {.pretty = true}));
  return out;
}

std::vector<Artifact> tangled_authored_artifacts(
    const hypermedia::NavigationalModel& model,
    const hypermedia::AccessStructure& structure,
    const MigrationOptions& options) {
  TangledRenderer renderer(model, structure, options.render);
  return to_artifacts(renderer.render_site());
}

MigrationReport measure_migration(const hypermedia::NavigationalModel& model,
                                  const hypermedia::AccessStructure& before,
                                  const hypermedia::AccessStructure& after,
                                  const MigrationOptions& options) {
  MigrationReport report;

  std::vector<Artifact> tangled_before =
      tangled_authored_artifacts(model, before, options);
  std::vector<Artifact> tangled_after =
      tangled_authored_artifacts(model, after, options);
  report.tangled_authored = diff::compare_sites(tangled_before, tangled_after);
  report.tangled_artifacts = tangled_after.size();

  std::vector<Artifact> separated_before =
      separated_authored_artifacts(before, options);
  std::vector<Artifact> separated_after =
      separated_authored_artifacts(after, options);
  report.separated_authored =
      diff::compare_sites(separated_before, separated_after);
  report.separated_artifacts = separated_after.size();

  report.separated_rendered = diff::compare_sites(
      separated_rendered_site(model, before, options),
      separated_rendered_site(model, after, options));

  return report;
}

}  // namespace navsep::core

#include "core/personalization.hpp"

#include <vector>

#include "xml/dom.hpp"

namespace navsep::core {

namespace {

/// Remove direct children of `parent` that `pred` selects (indices shift,
/// so walk back to front).
template <typename Pred>
void remove_children_if(xml::Element& parent, Pred pred) {
  for (std::size_t i = parent.children().size(); i-- > 0;) {
    const xml::Element* child = parent.children()[i]->as_element();
    if (child != nullptr && pred(*child)) {
      (void)parent.remove_child(i);
    }
  }
}

void strip_images(xml::Element& root) {
  root.walk([](xml::Element& e) {
    remove_children_if(e, [](const xml::Element& c) {
      return c.name().local == "img";
    });
  });
}

void compact_attributes(xml::Element& body) {
  // Node pages render attributes as <p><b>name: </b>value</p>; Compact
  // keeps only the first such paragraph (in document order).
  std::vector<std::size_t> attribute_paragraphs;
  for (std::size_t i = 0; i < body.children().size(); ++i) {
    const xml::Element* child = body.children()[i]->as_element();
    if (child != nullptr && child->name().local == "p" &&
        child->child("b") != nullptr) {
      attribute_paragraphs.push_back(i);
    }
  }
  for (std::size_t k = attribute_paragraphs.size(); k-- > 1;) {
    (void)body.remove_child(attribute_paragraphs[k]);
  }
}

void suppress_tour_anchors(xml::Element& body) {
  body.walk([](xml::Element& e) {
    if (e.attribute_or("class", "") != "navigation") return;
    remove_children_if(e, [](const xml::Element& c) {
      std::string cls = c.attribute_or("class", "");
      return cls == "nav-next" || cls == "nav-prev";
    });
  });
}

void greet(xml::Element& body, const std::string& who) {
  auto p = std::make_unique<xml::Element>(xml::QName("p"));
  p->set_attribute("class", "greeting");
  p->append_text("Welcome, " + who);
  body.insert(0, std::move(p));
}

}  // namespace

std::shared_ptr<aop::Aspect> PersonalizationAspect::for_profile(
    const UserProfile& profile, int precedence) {
  auto aspect = std::make_shared<aop::Aspect>("personalization", precedence);
  UserProfile p = profile;  // captured by value: the aspect is self-contained
  aspect->after(
      "compose(*) || buildIndex(*)",
      [p](aop::JoinPointContext& ctx) {
        auto* slot = ctx.payload_as<xml::Element*>();
        if (slot == nullptr || *slot == nullptr) return;
        xml::Element& body = **slot;
        if (!p.show_images) strip_images(body);
        if (p.detail == UserProfile::Detail::Compact) {
          compact_attributes(body);
        }
        if (p.suppress_tours) suppress_tour_anchors(body);
        if (p.greet) greet(body, p.name);
      },
      "customize composed pages for profile '" + profile.name + "'");
  return aspect;
}

}  // namespace navsep::core

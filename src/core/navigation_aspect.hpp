// The navigation aspect: the separated navigational concern, expressed as
// an aop::Aspect and woven into page composition (paper Figure 6).
//
// Base page code knows nothing about navigation. It announces a
// PageCompose join point whose payload is the page body element; this
// aspect's after-advice looks up the arcs leaving the node (in the current
// context), and appends the corresponding anchors:
//
//   <div class="navigation">
//     <a class="nav-up" ...>        (Index / Menu membership)
//     <a class="nav-prev" ...>      (tour chain, context-aware)
//     <a class="nav-next" ...>
//     <ul class="nav-index"> ...    (on structure pages)
//   </div>
//
// Swapping access structures — the paper's §5 change request — replaces
// this aspect's arc set (one artifact) and nothing else.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aop/aspect.hpp"
#include "hypermedia/access.hpp"
#include "xlink/traversal.hpp"
#include "xml/dom.hpp"

namespace navsep::core {

/// Provenance of one woven anchor: which authored linkbase arc produced
/// which anchor on which page. The incremental rebuild engine
/// (nav/buildgraph) consumes this to invalidate exactly the pages an arc
/// edit touches; tests use it to audit the weave.
struct AnchorProvenance {
  std::string page_id;   // join-point instance the anchor was woven into
  std::string context;   // context tag active at compose time ("" = none)
  std::string source;    // linkbase the arc came from (NavArc::source)
  std::size_t ordinal = 0;  // arc ordinal within that linkbase
  std::string to;        // anchor target id
  std::string role;      // hypermedia::roles::*
};

/// Default class attribute of the injected navigation container — shared
/// with the serve-time overlay splicer, which locates the woven block by
/// this class (a drift would make it miss the block and append a second
/// one).
inline constexpr std::string_view kDefaultNavContainerClass = "navigation";

struct NavigationAspectOptions {
  /// class attribute of the injected container.
  std::string container_class{kDefaultNavContainerClass};

  /// Maps node/page ids to hrefs in the rendered site.
  /// Default: "<id>.html" with ':' replaced by '-' for structure pages.
  std::function<std::string(std::string_view id)> href_for;

  /// Aspect precedence (higher = outer).
  int precedence = 10;

  /// Restrict tour (next/prev) arcs to the current context: when the
  /// PageCompose join point carries a context tag "family:name", a
  /// next/prev arc is emitted only if its arc context matches. Arcs built
  /// from plain access structures carry no context and always match.
  bool context_sensitive = true;

  /// When set, the injector appends one AnchorProvenance entry per woven
  /// anchor. Borrowed; must outlive the aspect. The caller owns clearing
  /// between compositions (the engine drains it per page).
  std::vector<AnchorProvenance>* provenance_log = nullptr;

  /// Thread-aware alternative to provenance_log (takes precedence when
  /// both are set): resolved per render_navigation call, so it can
  /// return a thread-local vector. This is what lets the parallel
  /// re-weave path log provenance from any pool thread — a raw pointer
  /// would pin the log to whichever thread built the aspect.
  std::function<std::vector<AnchorProvenance>*()> provenance_sink;

  /// Families whose context-tagged tour arcs are woven even when the page
  /// is composed OUTSIDE their context: each such context renders as a
  /// labeled tour group (`<div class="nav-tour" data-context="...">`)
  /// after the index entries. This is how a profile-scoped weave makes its
  /// families' tours visible on stored pages (nav::Profile;
  /// serve-time overlays must byte-match a build using the same list).
  /// Empty (the default) keeps the classic behavior: out-of-context tour
  /// arcs are not woven at all.
  std::vector<std::string> woven_context_families;
};

/// Default id → href mapping (shared with the renderers).
[[nodiscard]] std::string default_href_for(std::string_view id);

// Forward declaration (defined below) — render_navigation consumes it.
struct NavArc;

/// Render the navigation container for one page into `parent` from the
/// arcs leaving it (`arcs`, in combined linkbase order), honoring the
/// same context/role partition rules the NavigationAspect weaves with.
/// Returns the appended <div class="navigation"> (or nullptr when no arc
/// applies and nothing was appended).
///
/// This is THE navigation markup producer: the aspect's advice calls it
/// at weave time and the serve-time overlay path (serve/SiteSnapshot)
/// calls it per (page, profile) — one code path, so a late-composed
/// navigation block is byte-identical to a woven one by construction.
xml::Element* render_navigation(xml::Element& parent,
                                std::string_view page_instance,
                                std::string_view current_context,
                                const std::vector<const NavArc*>& arcs,
                                const NavigationAspectOptions& options);

/// One navigation arc as the aspect consumes it.
struct NavArc {
  std::string from;
  std::string to;
  std::string role;     // hypermedia::roles::*
  std::string title;
  std::string context;  // qualified context this arc belongs to ("" = any)
  // Provenance: which authored linkbase this arc came from, and where in
  // it ("" / 0 for arcs built directly from access structures).
  std::string source;
  std::size_t ordinal = 0;
};

/// Builds the aspect. The returned Aspect is self-contained: it owns a
/// copy of the arc table.
class NavigationAspect {
 public:
  /// From materialized access-structure arcs (no context restriction).
  [[nodiscard]] static std::shared_ptr<aop::Aspect> from_arcs(
      const std::vector<hypermedia::AccessArc>& arcs,
      const NavigationAspectOptions& options = {});

  /// From per-context arc sets: each entry tags its arcs with the
  /// qualified context name, making next/prev context-dependent.
  [[nodiscard]] static std::shared_ptr<aop::Aspect> from_contextual_arcs(
      const std::vector<NavArc>& arcs,
      const NavigationAspectOptions& options = {});

  /// From a parsed linkbase (the separated pipeline's path): nav: arcs are
  /// lifted back into access arcs first.
  [[nodiscard]] static std::shared_ptr<aop::Aspect> from_linkbase(
      const xlink::TraversalGraph& graph,
      const NavigationAspectOptions& options = {});

  /// From a *contextual* linkbase (build_context_linkbase): arcs keep
  /// their nav:context tags, so tour anchors appear only on pages composed
  /// inside the matching navigational context.
  [[nodiscard]] static std::shared_ptr<aop::Aspect> from_contextual_linkbase(
      const xlink::TraversalGraph& graph,
      const NavigationAspectOptions& options = {});

  /// One aspect covering a whole navigation design: the access structure's
  /// linkbase plus any number of contextual linkbases. Registering a
  /// single aspect (instead of one per linkbase) keeps all anchors inside
  /// one container div and one advice invocation per page.
  [[nodiscard]] static std::shared_ptr<aop::Aspect> combined(
      const xlink::TraversalGraph& structure_graph,
      const std::vector<const xlink::TraversalGraph*>& context_graphs,
      const NavigationAspectOptions& options = {});
};

/// A traversal graph labeled with the site path of the linkbase it was
/// loaded from — the provenance unit of the combined arc table.
struct SourcedGraph {
  std::string source;  // e.g. "links.xml", "links-byauthor.xml"
  const xlink::TraversalGraph* graph = nullptr;
};

/// Materialize the combined NavArc set of several linkbases in order,
/// tagging every arc with its source linkbase and ordinal. Feeding the
/// result to NavigationAspect::from_contextual_arcs weaves exactly what
/// NavigationAspect::combined would, but with provenance attached.
[[nodiscard]] std::vector<NavArc> combined_nav_arcs(
    const std::vector<SourcedGraph>& graphs);

}  // namespace navsep::core

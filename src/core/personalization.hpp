// Personalization: the paper's §2 definition of navigation distinguishes
// navigation objects from conceptual objects because "they are customized
// according to the user's profile and the tasks that are being made"
// ([Schwabe/Rossi 98]). This module expresses that customization as
// another woven aspect, demonstrating that the mechanism built for
// navigation carries further separated concerns unchanged.
//
// The PersonalizationAspect post-processes composed pages:
//   * detail level Compact removes secondary attribute paragraphs,
//   * show_images=false strips <img> placeholders,
//   * an optional greeting tagged with the profile name is prepended.
//
// It composes with the NavigationAspect through precedence: it runs after
// navigation injection (higher precedence = later among after-advice), so
// it sees — and may also trim — the navigation block.
#pragma once

#include <memory>
#include <string>

#include "aop/aspect.hpp"

namespace navsep::core {

struct UserProfile {
  std::string name = "visitor";

  enum class Detail { Full, Compact };
  Detail detail = Detail::Full;

  /// Keep the <img> placeholders on node pages?
  bool show_images = true;

  /// Prepend "Welcome, <name>" to every page?
  bool greet = false;

  /// Hide tour (next/prev) anchors — e.g. a kiosk profile restricted to
  /// index navigation.
  bool suppress_tours = false;
};

class PersonalizationAspect {
 public:
  /// Build the aspect for one profile. `precedence` must exceed the
  /// navigation aspect's (default 10) for tour suppression to see the
  /// injected anchors.
  [[nodiscard]] static std::shared_ptr<aop::Aspect> for_profile(
      const UserProfile& profile, int precedence = 20);
};

}  // namespace navsep::core

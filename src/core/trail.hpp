// The trail aspect: session history as a separated concern.
//
// HDM/OOHDM treat "where have I been" (breadcrumbs, guided-tour progress)
// as navigation-adjacent UI that tends to get tangled into page code just
// like links do. TrailAspect keeps it out: it *observes* LinkTraversal
// join points announced by NavigationSession and *contributes* a
// breadcrumb block at PageCompose — one aspect, two pointcuts, no page
// code involved.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "aop/aspect.hpp"

namespace navsep::core {

/// One recorded traversal step.
struct TrailStep {
  std::string node_id;
  std::string role;     // visit / next / prev / enter-context / ...
  std::string context;  // qualified context at traversal time ("" = none)
};

/// Shared trail state: the aspect holds one of these; tests and UIs read
/// it. (Value-semantic interface over an internal shared buffer so the
/// aspect's copies observe the same trail.)
class Trail {
 public:
  Trail() : steps_(std::make_shared<std::vector<TrailStep>>()) {}

  [[nodiscard]] const std::vector<TrailStep>& steps() const noexcept {
    return *steps_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return steps_->size(); }
  void clear() noexcept { steps_->clear(); }

  /// The last `n` node ids, oldest first (the breadcrumb line).
  [[nodiscard]] std::vector<std::string> recent(std::size_t n) const;

 private:
  friend class TrailAspect;
  std::shared_ptr<std::vector<TrailStep>> steps_;
};

class TrailAspect {
 public:
  /// Build the aspect. It records every traverse(*) into `trail` and, when
  /// `render_breadcrumbs` is true, appends a
  /// `<p class="trail">guitar → guernica → avignon</p>` block to composed
  /// pages (last `breadcrumb_length` stops).
  [[nodiscard]] static std::shared_ptr<aop::Aspect> create(
      Trail trail, bool render_breadcrumbs = true,
      std::size_t breadcrumb_length = 5, int precedence = 15);
};

}  // namespace navsep::core

// The access-structure migration experiment (the paper's §5 change
// request, quantified).
//
// Given one navigational model and two access structures (e.g. Index and
// IndexedGuidedTour), this driver produces, for both implementation
// styles, the set of *authored* artifacts a developer maintains:
//
//   tangled   — the HTML pages themselves (navigation baked in);
//   separated — the data XML files (caller-provided, access-structure
//               independent), the presentation stylesheet, and links.xml.
//
// It then diffs the before/after artifact sets. The paper's claim is the
// asymmetry this exposes: the tangled delta touches every page of the
// context, the separated delta touches exactly one artifact (links.xml).
#pragma once

#include <string>
#include <vector>

#include "core/linkbase.hpp"
#include "core/renderer.hpp"
#include "diff/diff.hpp"

namespace navsep::core {

/// A named authored artifact (path → content).
using Artifact = std::pair<std::string, std::string>;

struct MigrationOptions {
  /// The access-structure-independent artifacts of the separated site
  /// (data XML documents, CSS, XSLT...). They appear verbatim on both
  /// sides of the separated diff.
  std::vector<Artifact> separated_fixed_artifacts;

  /// Options used to synthesize links.xml on each side.
  LinkbaseOptions linkbase;

  /// Rendering options shared by both pipelines.
  RenderOptions render;
};

struct MigrationReport {
  /// Authored-artifact deltas — the paper's headline numbers.
  diff::SiteDelta tangled_authored;
  diff::SiteDelta separated_authored;

  /// Rendered-output delta of the woven (separated) site. Both pipelines
  /// change the user-visible pages identically; this shows the change
  /// really happened even though only links.xml was edited.
  diff::SiteDelta separated_rendered;

  /// Artifact counts, for reporting.
  std::size_t tangled_artifacts = 0;
  std::size_t separated_artifacts = 0;
};

/// Run the full before/after comparison.
[[nodiscard]] MigrationReport measure_migration(
    const hypermedia::NavigationalModel& model,
    const hypermedia::AccessStructure& before,
    const hypermedia::AccessStructure& after,
    const MigrationOptions& options = {});

/// The separated site's authored artifacts for one access structure:
/// fixed artifacts + the synthesized links.xml.
[[nodiscard]] std::vector<Artifact> separated_authored_artifacts(
    const hypermedia::AccessStructure& structure,
    const MigrationOptions& options);

/// The tangled site's authored artifacts: every rendered page.
[[nodiscard]] std::vector<Artifact> tangled_authored_artifacts(
    const hypermedia::NavigationalModel& model,
    const hypermedia::AccessStructure& structure,
    const MigrationOptions& options);

}  // namespace navsep::core

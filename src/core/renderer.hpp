// Page rendering, both ways the paper contrasts.
//
//   * TangledRenderer — the "before" picture (Figures 3/4): one renderer
//     emits content AND navigation; the access structure is hard-coded
//     into every page it produces, so changing it rewrites every page.
//
//   * SeparatedComposer — the "after" picture (Figure 6): the base
//     renderer emits content only and announces join points; the
//     navigation aspect (navigation_aspect.hpp) injects anchors at
//     PageCompose/IndexBuild. Both renderers emit the same markup shape,
//     which keeps the fig6 weaving-overhead comparison honest.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "aop/weaver.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/navigational.hpp"
#include "html/html.hpp"

namespace navsep::core {

struct RenderOptions {
  /// id → href in the rendered site (default: default_href_for).
  std::function<std::string(std::string_view id)> href_for;
  /// Stylesheet referenced from every page ("" = none).
  std::string stylesheet_href = "museum.css";
};

/// Render the *content* part of a node page (title, attributes, image
/// placeholder) — shared by both pipelines; contains no navigation.
void render_node_content(html::Page& page, const hypermedia::NavNode& node);

/// One rendered artifact.
struct RenderedPage {
  std::string path;  // site-relative file name
  std::string content;
};

/// The tangled implementation (paper Figures 3 and 4).
class TangledRenderer {
 public:
  TangledRenderer(const hypermedia::NavigationalModel& model,
                  const hypermedia::AccessStructure& structure,
                  RenderOptions options = {});

  /// A member node's page, with navigation anchors embedded inline.
  [[nodiscard]] std::string render_node_page(
      const hypermedia::NavNode& node) const;

  /// The access structure's own page (the Index page).
  [[nodiscard]] std::string render_structure_page() const;

  /// All pages: one per member plus structure pages.
  [[nodiscard]] std::vector<RenderedPage> render_site() const;

 private:
  void embed_navigation(html::Page& page, std::string_view id) const;

  const hypermedia::NavigationalModel* model_;
  const hypermedia::AccessStructure* structure_;
  RenderOptions options_;
  std::vector<hypermedia::AccessArc> arcs_;  // materialized once
};

/// The separated implementation: content + woven navigation.
class SeparatedComposer {
 public:
  SeparatedComposer(aop::Weaver& weaver, RenderOptions options = {});

  /// Compose one node page. `context_tag` is the qualified navigational
  /// context ("ByAuthor:picasso") the user is in; it reaches the aspect as
  /// the join point's context tag.
  [[nodiscard]] std::string compose_node_page(
      const hypermedia::NavNode& node, std::string_view context_tag = "") const;

  /// Compose a structure (index/menu) page.
  [[nodiscard]] std::string compose_structure_page(
      std::string_view page_id, std::string_view title) const;

  /// DOM-returning variants (for callers that keep processing the page —
  /// CSS resolution, further aspects — without a serialize/parse round
  /// trip).
  [[nodiscard]] html::Page compose_node_dom(
      const hypermedia::NavNode& node, std::string_view context_tag = "") const;
  [[nodiscard]] html::Page compose_structure_dom(
      std::string_view page_id, std::string_view title) const;

  /// Compose every page of a site: members of `structure` + its pages.
  [[nodiscard]] std::vector<RenderedPage> compose_site(
      const hypermedia::NavigationalModel& model,
      const hypermedia::AccessStructure& structure) const;

 private:
  aop::Weaver* weaver_;
  RenderOptions options_;
};

}  // namespace navsep::core

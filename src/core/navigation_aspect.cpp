#include "core/navigation_aspect.hpp"

#include <algorithm>
#include <utility>

#include "common/strings.hpp"
#include "core/linkbase.hpp"

namespace navsep::core {

std::string default_href_for(std::string_view id) {
  std::string out = strings::replace_all(id, ":", "-");
  return out + ".html";
}

namespace {

using hypermedia::roles::kIndexEntry;
using hypermedia::roles::kMenuEntry;
using hypermedia::roles::kNext;
using hypermedia::roles::kPrev;
using hypermedia::roles::kUp;

/// Family part of a qualified context tag ("ByAuthor:picasso" →
/// "ByAuthor"; an unqualified tag is its own family).
std::string_view context_family(std::string_view context) noexcept {
  return context.substr(0, context.find(':'));
}

/// The advice body: inject navigation for `node_id` into the page body.
class NavigationInjector {
 public:
  NavigationInjector(std::vector<NavArc> arcs,
                     NavigationAspectOptions options)
      : options_(std::move(options)) {
    if (!options_.href_for) options_.href_for = default_href_for;
    for (NavArc& arc : arcs) {
      by_from_[arc.from].push_back(std::move(arc));
    }
  }

  void operator()(aop::JoinPointContext& ctx) const {
    xml::Element* const* body_slot =
        std::any_cast<xml::Element*>(&ctx.payload());
    if (body_slot == nullptr || *body_slot == nullptr) return;
    xml::Element& body = **body_slot;

    const std::string& node_id = ctx.join_point().instance;
    auto it = by_from_.find(node_id);
    if (it == by_from_.end()) return;

    std::vector<const NavArc*> arcs;
    arcs.reserve(it->second.size());
    for (const NavArc& arc : it->second) arcs.push_back(&arc);
    render_navigation(body, node_id, ctx.join_point().tag(aop::tags::kContext),
                      arcs, options_);
  }

 private:
  NavigationAspectOptions options_;
  std::map<std::string, std::vector<NavArc>, std::less<>> by_from_;
};

}  // namespace

xml::Element* render_navigation(xml::Element& parent,
                                std::string_view page_instance,
                                std::string_view current_context,
                                const std::vector<const NavArc*>& arcs,
                                const NavigationAspectOptions& options) {
  const auto href_for = [&](std::string_view id) {
    return options.href_for ? options.href_for(id) : default_href_for(id);
  };

  // Partition the page's arcs by role, honoring context sensitivity: an
  // out-of-context tour arc is dropped unless its family is in
  // woven_context_families, in which case it renders inside a labeled
  // per-context tour group (first-appearance order).
  std::vector<const NavArc*> ups, prevs, nexts, entries;
  std::vector<std::pair<std::string_view, std::vector<const NavArc*>>> tours;
  for (const NavArc* arc : arcs) {
    const bool tour_arc = arc->role == kNext || arc->role == kPrev;
    if (options.context_sensitive && tour_arc && !arc->context.empty() &&
        arc->context != current_context) {
      const std::string_view family = context_family(arc->context);
      const bool woven =
          std::find(options.woven_context_families.begin(),
                    options.woven_context_families.end(),
                    family) != options.woven_context_families.end();
      if (!woven) continue;
      auto group = std::find_if(
          tours.begin(), tours.end(),
          [&](const auto& t) { return t.first == arc->context; });
      if (group == tours.end()) {
        tours.emplace_back(arc->context, std::vector<const NavArc*>{});
        group = std::prev(tours.end());
      }
      group->second.push_back(arc);
      continue;
    }
    if (arc->role == kUp) {
      ups.push_back(arc);
    } else if (arc->role == kPrev) {
      prevs.push_back(arc);
    } else if (arc->role == kNext) {
      nexts.push_back(arc);
    } else if (arc->role == kIndexEntry || arc->role == kMenuEntry) {
      entries.push_back(arc);
    }
  }
  if (ups.empty() && prevs.empty() && nexts.empty() && entries.empty() &&
      tours.empty()) {
    return nullptr;
  }

  xml::Element& nav = parent.append_element("div");
  nav.set_attribute("class", options.container_class);

  // Resolve the provenance destination once per call: the sink (which
  // may return a thread-local) wins over the raw pointer.
  std::vector<AnchorProvenance>* provenance =
      options.provenance_sink ? options.provenance_sink()
                              : options.provenance_log;

  auto anchor = [&](xml::Element& anchor_parent, const NavArc& arc,
                    std::string_view cls, std::string_view log_context) {
    xml::Element& a = anchor_parent.append_element("a");
    a.set_attribute("href", href_for(arc.to));
    a.set_attribute("class", cls);
    a.append_text(arc.title.empty() ? arc.to : arc.title);
    if (provenance != nullptr) {
      provenance->push_back(AnchorProvenance{
          std::string(page_instance), std::string(log_context), arc.source,
          arc.ordinal, arc.to, arc.role});
    }
  };

  for (const NavArc* arc : ups) anchor(nav, *arc, "nav-up", current_context);
  for (const NavArc* arc : prevs) {
    anchor(nav, *arc, "nav-prev", current_context);
  }
  for (const NavArc* arc : nexts) {
    anchor(nav, *arc, "nav-next", current_context);
  }
  if (!entries.empty()) {
    xml::Element& ul = nav.append_element("ul");
    ul.set_attribute("class", "nav-index");
    for (const NavArc* arc : entries) {
      anchor(ul.append_element("li"), *arc, "nav-entry", current_context);
    }
  }
  for (const auto& [context, group] : tours) {
    xml::Element& tour = nav.append_element("div");
    tour.set_attribute("class", "nav-tour");
    tour.set_attribute("data-context", context);
    xml::Element& label = tour.append_element("span");
    label.set_attribute("class", "nav-tour-label");
    label.append_text(context);
    for (const NavArc* arc : group) {
      // Out-of-context anchors log the context they belong to, not the
      // (different) one the page was composed in.
      anchor(tour, *arc, arc->role == kPrev ? "nav-prev" : "nav-next",
             arc->context);
    }
  }
  return &nav;
}

namespace {

std::shared_ptr<aop::Aspect> build_aspect(std::vector<NavArc> arcs,
                                          const NavigationAspectOptions& o) {
  auto aspect = std::make_shared<aop::Aspect>("navigation", o.precedence);
  NavigationInjector injector(std::move(arcs), o);
  aspect->after("compose(*) || buildIndex(*)", std::move(injector),
                "inject navigation anchors for the active access structure");
  return aspect;
}

}  // namespace

std::shared_ptr<aop::Aspect> NavigationAspect::from_arcs(
    const std::vector<hypermedia::AccessArc>& arcs,
    const NavigationAspectOptions& options) {
  std::vector<NavArc> nav;
  nav.reserve(arcs.size());
  for (const auto& a : arcs) {
    nav.push_back(NavArc{a.from, a.to, a.role, a.title, "", "", 0});
  }
  return build_aspect(std::move(nav), options);
}

std::shared_ptr<aop::Aspect> NavigationAspect::from_contextual_arcs(
    const std::vector<NavArc>& arcs, const NavigationAspectOptions& options) {
  return build_aspect(arcs, options);
}

std::shared_ptr<aop::Aspect> NavigationAspect::from_linkbase(
    const xlink::TraversalGraph& graph,
    const NavigationAspectOptions& options) {
  return from_arcs(arcs_from_graph(graph), options);
}

std::shared_ptr<aop::Aspect> NavigationAspect::from_contextual_linkbase(
    const xlink::TraversalGraph& graph,
    const NavigationAspectOptions& options) {
  std::vector<NavArc> nav;
  for (const ContextualArc& ca : contextual_arcs_from_graph(graph)) {
    nav.push_back(NavArc{ca.arc.from, ca.arc.to, ca.arc.role, ca.arc.title,
                         ca.context, "", ca.ordinal});
  }
  return build_aspect(std::move(nav), options);
}

std::shared_ptr<aop::Aspect> NavigationAspect::combined(
    const xlink::TraversalGraph& structure_graph,
    const std::vector<const xlink::TraversalGraph*>& context_graphs,
    const NavigationAspectOptions& options) {
  std::vector<SourcedGraph> sourced;
  sourced.reserve(context_graphs.size() + 1);
  sourced.push_back(SourcedGraph{"", &structure_graph});
  for (const xlink::TraversalGraph* graph : context_graphs) {
    sourced.push_back(SourcedGraph{"", graph});
  }
  return build_aspect(combined_nav_arcs(sourced), options);
}

std::vector<NavArc> combined_nav_arcs(const std::vector<SourcedGraph>& graphs) {
  std::vector<NavArc> nav;
  for (const SourcedGraph& sg : graphs) {
    if (sg.graph == nullptr) continue;
    for (const ContextualArc& ca : contextual_arcs_from_graph(*sg.graph)) {
      nav.push_back(NavArc{ca.arc.from, ca.arc.to, ca.arc.role, ca.arc.title,
                           ca.context, sg.source, ca.ordinal});
    }
  }
  return nav;
}

}  // namespace navsep::core

// Linkbase synthesis and loading: the XLink half of the separation.
//
// This is the heart of the paper's proposal (its Figure 9): the whole
// access structure — which arcs exist, in which order, with which labels —
// lives in ONE authored artifact, links.xml, expressed as an XLink
// extended link. Changing the access structure (the Index → IndexedGuided-
// Tour request of §5) rewrites only this file; the data documents and the
// presentation stylesheet are untouched. bench/e1_change_impact measures
// exactly that.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/navigational.hpp"
#include "xlink/traversal.hpp"
#include "xml/dom.hpp"

namespace navsep::core {

/// Prefix distinguishing navigation arcroles inside the linkbase.
inline constexpr std::string_view kNavArcrolePrefix = "nav:";

struct LinkbaseOptions {
  /// Base URI recorded on the produced document (locator hrefs stay
  /// relative to it).
  std::string base_uri = "http://museum.example/site/links.xml";

  /// Maps a node id to the URI reference of its data resource, e.g.
  /// "guitar" -> "data/picasso.xml#guitar". The default points every node
  /// at "data/<id>.xml".
  std::function<std::string(std::string_view node_id)> data_href;

  /// Maps an access-structure page id ("index:paintings") to its URI
  /// reference. Default: "index.xml".
  std::function<std::string(std::string_view page_id)> structure_href;
};

/// Build the links.xml document for one access structure: one extended
/// link whose locators cover every member (plus structure pages) and whose
/// arcs mirror AccessStructure::arcs() with arcrole "nav:<role>".
[[nodiscard]] std::unique_ptr<xml::Document> build_linkbase(
    const hypermedia::AccessStructure& structure,
    const LinkbaseOptions& options = {});

/// Load a linkbase document back into a traversal graph (convenience over
/// xlink::TraversalGraph::from_linkbase, with nav-arcrole filtering).
[[nodiscard]] xlink::TraversalGraph load_linkbase(const xml::Document& doc);

/// Extract the access-structure arcs back out of a traversal graph:
/// the inverse of build_linkbase up to URI mapping. `id_for` maps a
/// resource URI back to a node id (defaults to the fragment, falling back
/// to the last path segment without extension).
[[nodiscard]] std::vector<hypermedia::AccessArc> arcs_from_graph(
    const xlink::TraversalGraph& graph,
    const std::function<std::string(std::string_view uri)>& id_for = {});

// --- contextual linkbases -----------------------------------------------------
//
// The paper's §2 point — "the next page to visit … will depend on the
// previous navigation" — needs *per-context* tours. A contextual linkbase
// carries one extended link per navigational context; its next/prev arcs
// are tagged with the qualified context name in a nav:context attribute
// (namespace urn:navsep:navigation), so the navigation aspect can emit
// them only when the page is composed inside that context.

/// Namespace of the navsep linkbase extension attributes.
inline constexpr std::string_view kNavExtensionNamespace =
    "urn:navsep:navigation";

/// Build a linkbase with one extended link (a guided tour) per context of
/// the family. Member titles come from the navigational model.
[[nodiscard]] std::unique_ptr<xml::Document> build_context_linkbase(
    const hypermedia::ContextFamily& family,
    const hypermedia::NavigationalModel& model,
    const LinkbaseOptions& options = {});

/// Same authoring, but titles come from a function instead of a model.
/// The model overload delegates here — one implementation authors every
/// context linkbase, which is what pins the lazily synthesized route
/// linkbase (serve::SiteSnapshot has only the engine's exported title
/// table, no NavigationalModel) byte-identical to the ahead-of-time
/// authored one. `title_of` must return the node id itself for unknown
/// ids (the model overload's fallback).
[[nodiscard]] std::unique_ptr<xml::Document> build_context_linkbase(
    const hypermedia::ContextFamily& family,
    const std::function<std::string(std::string_view node_id)>& title_of,
    const LinkbaseOptions& options = {});

/// Read back context-tagged navigation arcs (for
/// NavigationAspect::from_contextual_arcs). The graph must have been built
/// from the same document so arc origins are alive.
///
/// Each extracted arc carries provenance back into the authored linkbase:
/// `ordinal` is its 0-based position among the graph's nav arcs and
/// `origin` the XML arc element it was parsed from — enough for an
/// incremental rebuilder to say "this authored arc produced that woven
/// anchor".
struct ContextualArc {
  hypermedia::AccessArc arc;
  std::string context;  // qualified context name ("" when untagged)
  std::size_t ordinal = 0;                // position among the nav arcs
  const xml::Element* origin = nullptr;   // the linkbase arc element
};
[[nodiscard]] std::vector<ContextualArc> contextual_arcs_from_graph(
    const xlink::TraversalGraph& graph,
    const std::function<std::string(std::string_view uri)>& id_for = {});

}  // namespace navsep::core

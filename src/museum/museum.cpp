#include "museum/museum.hpp"

#include "common/rng.hpp"
#include "xml/serializer.hpp"

namespace navsep::museum {

using hypermedia::AccessStructureKind;
using hypermedia::Cardinality;
using hypermedia::ContextFamily;
using hypermedia::Member;
using hypermedia::NavigationalModel;

MuseumWorld::MuseumWorld() : model_(schema_) {
  schema_.add_class("Painter", {{"name", true},
                                {"born", false},
                                {"nationality", false}});
  schema_.add_class("Painting", {{"title", true},
                                 {"year", false},
                                 {"technique", false},
                                 {"movement", false}});
  schema_.add_class("Movement", {{"title", true}, {"period", false}});
  schema_.add_relationship("painted", "Painter", "Painting",
                           Cardinality::Many, "painted-by");
  schema_.add_relationship("member-of", "Painting", "Movement",
                           Cardinality::Many, "gathers");

  nav_schema_.add_node_class(hypermedia::NodeClassDef{
      "PainterNode", "Painter", {"name", "born", "nationality"}, "name"});
  nav_schema_.add_node_class(hypermedia::NodeClassDef{
      "PaintingNode",
      "Painting",
      {"title", "year", "technique", "movement"},
      "title"});
  nav_schema_.add_link_class(hypermedia::LinkClassDef{
      "works", "painted", "PainterNode", "PaintingNode"});
  nav_schema_.add_link_class(hypermedia::LinkClassDef{
      "author", "painted-by", "PaintingNode", "PainterNode"});
}

std::unique_ptr<MuseumWorld> MuseumWorld::paper_instance() {
  std::unique_ptr<MuseumWorld> world(new MuseumWorld());
  auto& m = world->model_;

  auto& cubism = m.create("Movement", "cubism");
  cubism.set_attribute("title", "Cubism");
  cubism.set_attribute("period", "1907-1925");

  auto& picasso = m.create("Painter", "picasso");
  picasso.set_attribute("name", "Pablo Picasso");
  picasso.set_attribute("born", "1881");
  picasso.set_attribute("nationality", "Spanish");

  struct P {
    const char* id;
    const char* title;
    const char* year;
    const char* technique;
  };
  // The three paintings of the paper's "paintings by Picasso" context
  // (Figures 3/4 name Guitar, Guernica and Avignon).
  for (const P& p : {P{"guitar", "The Guitar", "1913", "oil on canvas"},
                     P{"guernica", "Guernica", "1937", "oil on canvas"},
                     P{"avignon", "Les Demoiselles d'Avignon", "1907",
                       "oil on canvas"}}) {
    auto& painting = m.create("Painting", p.id);
    painting.set_attribute("title", p.title);
    painting.set_attribute("year", p.year);
    painting.set_attribute("technique", p.technique);
    painting.set_attribute("movement", "cubism");
    m.relate(picasso, "painted", painting);
    m.relate(painting, "member-of", cubism);
  }
  return world;
}

std::unique_ptr<MuseumWorld> MuseumWorld::synthetic(const SyntheticSpec& spec) {
  std::unique_ptr<MuseumWorld> world(new MuseumWorld());
  auto& m = world->model_;
  Rng rng(spec.seed);

  std::vector<hypermedia::Entity*> movements;
  for (std::size_t i = 0; i < spec.movements; ++i) {
    auto& mv = m.create("Movement", "movement-" + std::to_string(i));
    mv.set_attribute("title", "The " + rng.word(7) + " movement");
    mv.set_attribute("period", std::to_string(1800 + 10 * i) + "-" +
                                   std::to_string(1810 + 10 * i));
    movements.push_back(&mv);
  }

  for (std::size_t p = 0; p < spec.painters; ++p) {
    std::string pid = "painter-" + std::to_string(p);
    auto& painter = m.create("Painter", pid);
    painter.set_attribute("name", rng.word(6) + " " + rng.word(8));
    painter.set_attribute("born",
                          std::to_string(rng.between(1700, 1950)));
    painter.set_attribute("nationality", rng.word(8));

    for (std::size_t w = 0; w < spec.paintings_per_painter; ++w) {
      std::string wid = pid + "-work-" + std::to_string(w);
      auto& painting = m.create("Painting", wid);
      painting.set_attribute("title", "The " + rng.word(5) + " " +
                                          rng.word(7));
      painting.set_attribute("year",
                             std::to_string(rng.between(1720, 1990)));
      painting.set_attribute("technique",
                             rng.chance(0.5) ? "oil on canvas" : "tempera");
      if (!movements.empty()) {
        hypermedia::Entity* mv =
            movements[rng.below(movements.size())];
        painting.set_attribute("movement", mv->id());
        m.relate(painting, "member-of", *mv);
      }
      m.relate(painter, "painted", painting);
    }
  }
  return world;
}

NavigationalModel MuseumWorld::derive_navigation() const {
  return NavigationalModel::derive(model_, nav_schema_);
}

ContextFamily MuseumWorld::by_author(const NavigationalModel& nav) const {
  return ContextFamily::group_by_relation(nav, "PainterNode", "painted",
                                          "ByAuthor");
}

ContextFamily MuseumWorld::by_movement(const NavigationalModel& nav) const {
  return ContextFamily::group_by_attribute(nav, "PaintingNode", "movement",
                                           "ByMovement");
}

namespace {

std::vector<Member> members_for(
    const NavigationalModel& nav,
    const std::vector<std::string>& node_ids) {
  std::vector<Member> out;
  out.reserve(node_ids.size());
  for (const std::string& id : node_ids) {
    const hypermedia::NavNode* node = nav.node(id);
    out.push_back(Member{id, node != nullptr ? node->title() : id});
  }
  return out;
}

}  // namespace

std::unique_ptr<hypermedia::AccessStructure> MuseumWorld::paintings_structure(
    AccessStructureKind kind, const NavigationalModel& nav,
    std::string_view painter_id) const {
  const hypermedia::Entity* painter = model_.find(painter_id);
  if (painter == nullptr) {
    throw SemanticError("unknown painter '" + std::string(painter_id) + "'");
  }
  std::vector<std::string> ids;
  for (const hypermedia::Entity* w : painter->related("painted")) {
    ids.push_back(w->id());
  }
  return hypermedia::make_access_structure(
      kind, "paintings-of-" + std::string(painter_id),
      members_for(nav, ids));
}

std::unique_ptr<hypermedia::AccessStructure>
MuseumWorld::all_paintings_structure(AccessStructureKind kind,
                                     const NavigationalModel& nav) const {
  std::vector<std::string> ids;
  for (const hypermedia::NavNode* n : nav.nodes_of("PaintingNode")) {
    ids.push_back(n->id());
  }
  return hypermedia::make_access_structure(kind, "paintings",
                                           members_for(nav, ids));
}

std::unique_ptr<xml::Document> MuseumWorld::painter_document(
    std::string_view painter_id) const {
  const hypermedia::Entity* painter = model_.find(painter_id);
  if (painter == nullptr) {
    throw SemanticError("unknown painter '" + std::string(painter_id) + "'");
  }
  auto doc = std::make_unique<xml::Document>();
  xml::Element& root = doc->set_root(xml::QName("painter"));
  root.set_attribute("id", painter->id());
  for (std::string_view attr : {"name", "born", "nationality"}) {
    if (auto v = painter->attribute(attr)) {
      root.append_element(attr).append_text(*v);
    }
  }
  for (const hypermedia::Entity* w : painter->related("painted")) {
    xml::Element& p = root.append_element("painting");
    p.set_attribute("id", w->id());
    p.append_element("title").append_text(w->attribute_or("title", w->id()));
    if (auto y = w->attribute("year")) {
      p.append_element("year").append_text(*y);
    }
  }
  return doc;
}

std::unique_ptr<xml::Document> MuseumWorld::painting_document(
    std::string_view painting_id) const {
  const hypermedia::Entity* painting = model_.find(painting_id);
  if (painting == nullptr) {
    throw SemanticError("unknown painting '" + std::string(painting_id) +
                        "'");
  }
  auto doc = std::make_unique<xml::Document>();
  xml::Element& root = doc->set_root(xml::QName("painting"));
  root.set_attribute("id", painting->id());
  for (std::string_view attr : {"title", "year", "technique", "movement"}) {
    if (auto v = painting->attribute(attr)) {
      root.append_element(attr).append_text(*v);
    }
  }
  const auto& authors = painting->related("painted-by");
  if (!authors.empty()) {
    xml::Element& by = root.append_element("painted-by");
    by.set_attribute("ref", authors.front()->id());
    by.append_text(authors.front()->attribute_or("name", ""));
  }
  return doc;
}

std::vector<core::Artifact> MuseumWorld::data_artifacts() const {
  std::vector<core::Artifact> out;
  xml::WriteOptions pretty{.pretty = true, .indent = "  ", .declaration = true};
  for (const std::string& pid : painter_ids()) {
    out.emplace_back("data/" + pid + ".xml",
                     xml::write(*painter_document(pid), pretty));
  }
  for (const std::string& wid : painting_ids()) {
    out.emplace_back("data/" + wid + ".xml",
                     xml::write(*painting_document(wid), pretty));
  }
  return out;
}

std::vector<std::string> MuseumWorld::painter_ids() const {
  std::vector<std::string> out;
  for (const hypermedia::Entity* e : model_.entities_of("Painter")) {
    out.push_back(e->id());
  }
  return out;
}

std::vector<std::string> MuseumWorld::painting_ids() const {
  std::vector<std::string> out;
  for (const hypermedia::Entity* e : model_.entities_of("Painting")) {
    out.push_back(e->id());
  }
  return out;
}

std::string MuseumWorld::presentation_xslt() {
  return R"(<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
  <xsl:template match="/painting">
    <div class="content">
      <h1><xsl:value-of select="title"/></h1>
      <img src="{@id}.jpg" alt="{title}"/>
      <p><b>year: </b><xsl:value-of select="year"/></p>
      <p><b>technique: </b><xsl:value-of select="technique"/></p>
      <xsl:if test="painted-by">
        <p><b>painter: </b><xsl:value-of select="painted-by"/></p>
      </xsl:if>
    </div>
  </xsl:template>
  <xsl:template match="/painter">
    <div class="content">
      <h1><xsl:value-of select="name"/></h1>
      <p><b>born: </b><xsl:value-of select="born"/></p>
      <p><b>nationality: </b><xsl:value-of select="nationality"/></p>
      <ul class="works">
        <xsl:for-each select="painting">
          <li><xsl:value-of select="title"/></li>
        </xsl:for-each>
      </ul>
    </div>
  </xsl:template>
</xsl:stylesheet>
)";
}

std::string MuseumWorld::site_css() {
  return R"(body { font-family: serif; color: black; }
h1 { text-align: center; }
img { display: block; }
.navigation { border-top: 1px solid; margin-top: 1em; }
.navigation a { margin-right: 1em; }
.nav-index { list-style-type: square; }
.nav-next { font-weight: bold; }
.nav-prev { font-weight: bold; }
)";
}

}  // namespace navsep::museum

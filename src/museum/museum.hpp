// The museum application: the paper's running example, plus a seeded
// synthetic generator for scaling benchmarks.
//
// Domain (conceptual schema):
//   Painter  {name, born, nationality}
//   Painting {title, year, technique, movement}
//   Movement {title, period}
//   painted     : Painter  -> Painting (inverse painted-by)
//   member-of   : Painting -> Movement (inverse gathers)
//
// The paper instance reproduces the artifacts of Figures 3/4/7/8/9:
// Picasso with The Guitar / Guernica / Les Demoiselles d'Avignon, the
// cubism movement, and the "paintings by Picasso" navigational context.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/migration.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/conceptual.hpp"
#include "hypermedia/navigational.hpp"
#include "xml/dom.hpp"

namespace navsep::museum {

/// Parameters of the synthetic museum.
struct SyntheticSpec {
  std::size_t painters = 10;
  std::size_t paintings_per_painter = 5;  // exact count per painter
  std::size_t movements = 3;
  std::uint64_t seed = 42;
};

/// Owns the museum's schemas and conceptual instances. Address-stable by
/// design (the model points into the schema), hence non-movable; create on
/// the heap via the factories.
class MuseumWorld {
 public:
  MuseumWorld(const MuseumWorld&) = delete;
  MuseumWorld& operator=(const MuseumWorld&) = delete;

  /// The exact instance the paper's figures use.
  [[nodiscard]] static std::unique_ptr<MuseumWorld> paper_instance();

  /// A deterministic synthetic museum of the given size.
  [[nodiscard]] static std::unique_ptr<MuseumWorld> synthetic(
      const SyntheticSpec& spec);

  [[nodiscard]] const hypermedia::ConceptualModel& conceptual() const noexcept {
    return model_;
  }
  [[nodiscard]] const hypermedia::NavigationalSchema& navigation_schema()
      const noexcept {
    return nav_schema_;
  }

  /// Instantiate the navigational model (PainterNode/PaintingNode views).
  [[nodiscard]] hypermedia::NavigationalModel derive_navigation() const;

  // --- contexts (paper §2) ----------------------------------------------------

  /// "Paintings by author X", one context per painter.
  [[nodiscard]] hypermedia::ContextFamily by_author(
      const hypermedia::NavigationalModel& nav) const;

  /// "Paintings of movement M", one context per movement.
  [[nodiscard]] hypermedia::ContextFamily by_movement(
      const hypermedia::NavigationalModel& nav) const;

  // --- access structures -----------------------------------------------------

  /// An access structure over one painter's paintings (the paper's
  /// example: Index first, IndexedGuidedTour after the change request).
  [[nodiscard]] std::unique_ptr<hypermedia::AccessStructure>
  paintings_structure(hypermedia::AccessStructureKind kind,
                      const hypermedia::NavigationalModel& nav,
                      std::string_view painter_id) const;

  /// An access structure over every painting in the museum.
  [[nodiscard]] std::unique_ptr<hypermedia::AccessStructure>
  all_paintings_structure(hypermedia::AccessStructureKind kind,
                          const hypermedia::NavigationalModel& nav) const;

  // --- data documents (Figures 7/8) -------------------------------------------

  /// picasso.xml: a painter document with nested painting summaries.
  [[nodiscard]] std::unique_ptr<xml::Document> painter_document(
      std::string_view painter_id) const;

  /// avignon.xml: a single painting's detail document.
  [[nodiscard]] std::unique_ptr<xml::Document> painting_document(
      std::string_view painting_id) const;

  /// Every data artifact of the separated site: one XML file per painter
  /// plus one per painting (path → serialized content).
  [[nodiscard]] std::vector<core::Artifact> data_artifacts() const;

  /// Painter ids in creation order.
  [[nodiscard]] std::vector<std::string> painter_ids() const;
  [[nodiscard]] std::vector<std::string> painting_ids() const;

  // --- fixed presentation artifacts -------------------------------------------

  /// The XSLT stylesheet that renders painter/painting documents to HTML
  /// content (navigation-free; the aspect adds navigation).
  [[nodiscard]] static std::string presentation_xslt();

  /// The site CSS (referenced by every page).
  [[nodiscard]] static std::string site_css();

 private:
  MuseumWorld();

  hypermedia::ConceptualSchema schema_;
  hypermedia::ConceptualModel model_;
  hypermedia::NavigationalSchema nav_schema_;
};

}  // namespace navsep::museum

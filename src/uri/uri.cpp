#include "uri/uri.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace navsep::uri {

namespace {

bool is_unreserved(char c) noexcept {
  return strings::is_alnum(c) || c == '-' || c == '.' || c == '_' || c == '~';
}

bool is_hex(char c) noexcept {
  return strings::is_digit(c) || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

int hex_value(char c) noexcept {
  if (strings::is_digit(c)) return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

char hex_digit(int v) noexcept {
  return v < 10 ? static_cast<char>('0' + v) : static_cast<char>('A' + v - 10);
}

bool valid_scheme(std::string_view s) noexcept {
  if (s.empty() || !strings::is_alpha(s[0])) return false;
  for (char c : s) {
    if (!strings::is_alnum(c) && c != '+' && c != '-' && c != '.') return false;
  }
  return true;
}

/// Merge a relative path with the base path (RFC 3986 §5.2.3).
std::string merge_paths(const Uri& base, std::string_view ref_path) {
  if (base.authority && base.path.empty()) {
    return "/" + std::string(ref_path);
  }
  std::size_t slash = base.path.rfind('/');
  if (slash == std::string::npos) return std::string(ref_path);
  return base.path.substr(0, slash + 1) + std::string(ref_path);
}

}  // namespace

Uri parse(std::string_view text) {
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (strings::is_space(c) || c == '<' || c == '>' || c == '"') {
      throw ParseError("illegal character in URI reference",
                       Position{1, i + 1, i});
    }
  }

  Uri out;
  // Fragment first: everything after the first '#'.
  if (std::size_t hash = text.find('#'); hash != std::string_view::npos) {
    out.fragment = std::string(text.substr(hash + 1));
    text = text.substr(0, hash);
  }
  // Scheme: up to the first ':' provided it precedes any '/', '?'.
  if (std::size_t colon = text.find(':'); colon != std::string_view::npos) {
    std::string_view candidate = text.substr(0, colon);
    bool before_delims = text.substr(0, colon).find('/') ==
                             std::string_view::npos &&
                         text.substr(0, colon).find('?') ==
                             std::string_view::npos;
    if (before_delims && valid_scheme(candidate)) {
      out.scheme = strings::to_lower(candidate);
      text = text.substr(colon + 1);
    }
  }
  // Query: everything after the first '?'.
  if (std::size_t q = text.find('?'); q != std::string_view::npos) {
    out.query = std::string(text.substr(q + 1));
    text = text.substr(0, q);
  }
  // Authority: "//" up to the next '/' (or end).
  if (text.substr(0, 2) == "//") {
    text = text.substr(2);
    std::size_t slash = text.find('/');
    if (slash == std::string_view::npos) {
      out.authority = std::string(text);
      text = {};
    } else {
      out.authority = std::string(text.substr(0, slash));
      text = text.substr(slash);
    }
  }
  out.path = std::string(text);
  return out;
}

std::string Uri::to_string() const {
  std::string out;
  if (scheme) {
    out += *scheme;
    out += ':';
  }
  if (authority) {
    out += "//";
    out += *authority;
  }
  out += path;
  if (query) {
    out += '?';
    out += *query;
  }
  if (fragment) {
    out += '#';
    out += *fragment;
  }
  return out;
}

std::string remove_dot_segments(std::string_view path) {
  std::string input(path);
  std::string output;
  while (!input.empty()) {
    if (input.rfind("../", 0) == 0) {
      input.erase(0, 3);
    } else if (input.rfind("./", 0) == 0) {
      input.erase(0, 2);
    } else if (input.rfind("/./", 0) == 0) {
      input.replace(0, 3, "/");
    } else if (input == "/.") {
      input = "/";
    } else if (input.rfind("/../", 0) == 0 || input == "/..") {
      input.replace(0, input == "/.." ? 3 : 4, "/");
      std::size_t slash = output.rfind('/');
      output.erase(slash == std::string::npos ? 0 : slash);
    } else if (input == "." || input == "..") {
      input.clear();
    } else {
      std::size_t start = input[0] == '/' ? 1 : 0;
      std::size_t slash = input.find('/', start);
      std::size_t seg_end = slash == std::string::npos ? input.size() : slash;
      output.append(input, 0, seg_end);
      input.erase(0, seg_end);
    }
  }
  return output;
}

Uri resolve(const Uri& base, const Uri& reference) {
  Uri target;
  if (reference.scheme) {
    target.scheme = reference.scheme;
    target.authority = reference.authority;
    target.path = remove_dot_segments(reference.path);
    target.query = reference.query;
  } else {
    if (reference.authority) {
      target.authority = reference.authority;
      target.path = remove_dot_segments(reference.path);
      target.query = reference.query;
    } else {
      if (reference.path.empty()) {
        target.path = base.path;
        target.query = reference.query ? reference.query : base.query;
      } else {
        if (reference.path[0] == '/') {
          target.path = remove_dot_segments(reference.path);
        } else {
          target.path = remove_dot_segments(merge_paths(base, reference.path));
        }
        target.query = reference.query;
      }
      target.authority = base.authority;
    }
    target.scheme = base.scheme;
  }
  target.fragment = reference.fragment;
  return target;
}

std::string resolve(std::string_view base, std::string_view reference) {
  return resolve(parse(base), parse(reference)).to_string();
}

Uri normalize(const Uri& u) {
  Uri out = u;
  if (out.scheme) out.scheme = strings::to_lower(*out.scheme);
  if (out.authority) {
    // Host is case-insensitive; userinfo and port are not touched beyond
    // percent-normalization below.
    out.authority = strings::to_lower(*out.authority);
  }
  auto renorm = [](std::string_view s) {
    std::string decoded;
    decoded.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] == '%' && i + 2 < s.size() && is_hex(s[i + 1]) &&
          is_hex(s[i + 2])) {
        int v = hex_value(s[i + 1]) * 16 + hex_value(s[i + 2]);
        char c = static_cast<char>(v);
        if (is_unreserved(c)) {
          decoded.push_back(c);
        } else {
          decoded.push_back('%');
          decoded.push_back(hex_digit(v / 16));
          decoded.push_back(hex_digit(v % 16));
        }
        i += 2;
      } else {
        decoded.push_back(s[i]);
      }
    }
    return decoded;
  };
  out.path = remove_dot_segments(renorm(out.path));
  if (out.query) out.query = renorm(*out.query);
  if (out.fragment) out.fragment = renorm(*out.fragment);
  if (out.authority) out.authority = renorm(*out.authority);
  return out;
}

std::string percent_encode(std::string_view s, std::string_view keep) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (is_unreserved(c) || keep.find(c) != std::string_view::npos) {
      out.push_back(c);
    } else {
      auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex_digit(b / 16));
      out.push_back(hex_digit(b % 16));
    }
  }
  return out;
}

std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && is_hex(s[i + 1]) &&
        is_hex(s[i + 2])) {
      out.push_back(
          static_cast<char>(hex_value(s[i + 1]) * 16 + hex_value(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace navsep::uri

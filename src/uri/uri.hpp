// RFC 3986 URI references: parsing, recomposition, relative-reference
// resolution and normalization.
//
// XLink locators carry URI references whose fragment part is an XPointer;
// this module splits a reference into components, resolves it against the
// base URI of the containing linkbase, and normalizes the result so that
// the document registry can use normalized URIs as lookup keys.
//
// Coverage: the full generic syntax (scheme/authority/path/query/fragment),
// dot-segment removal, percent-encoding, and the complete resolution
// algorithm of RFC 3986 §5.3. Not covered: IRIs (non-ASCII is passed
// through opaquely) and scheme-specific semantics.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace navsep::uri {

/// A parsed URI reference. Absent components are distinguished from empty
/// ones (e.g. "http://h" has no query; "http://h?" has an empty query) —
/// the distinction matters for recomposition and resolution.
struct Uri {
  std::optional<std::string> scheme;     // without ':'
  std::optional<std::string> authority;  // without '//'
  std::string path;                      // possibly empty
  std::optional<std::string> query;     // without '?'
  std::optional<std::string> fragment;  // without '#'

  [[nodiscard]] bool is_absolute() const noexcept { return scheme.has_value(); }

  /// True for a same-document reference (only a fragment, RFC 3986 §4.4).
  [[nodiscard]] bool is_same_document() const noexcept {
    return !scheme && !authority && path.empty() && !query;
  }

  /// Recompose the textual form (RFC 3986 §5.3).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Uri&, const Uri&) = default;
};

/// Parse a URI reference. Throws navsep::ParseError on characters that can
/// never appear in a URI (whitespace, '<', '>', '"').
[[nodiscard]] Uri parse(std::string_view text);

/// Resolve `reference` against `base` (RFC 3986 §5.2.2, strict mode).
[[nodiscard]] Uri resolve(const Uri& base, const Uri& reference);

/// Convenience overload: parse then resolve then recompose.
[[nodiscard]] std::string resolve(std::string_view base,
                                  std::string_view reference);

/// Remove "." and ".." segments from a path (RFC 3986 §5.2.4).
[[nodiscard]] std::string remove_dot_segments(std::string_view path);

/// Syntax-based normalization (RFC 3986 §6.2.2): lowercases scheme and
/// host, uppercases percent-encoding hex digits, decodes unreserved
/// percent-escapes, removes dot segments.
[[nodiscard]] Uri normalize(const Uri& u);

/// Percent-encode every byte not in `keep` and not unreserved.
[[nodiscard]] std::string percent_encode(std::string_view s,
                                         std::string_view keep = "");

/// Decode %XX escapes; malformed escapes are left untouched.
[[nodiscard]] std::string percent_decode(std::string_view s);

}  // namespace navsep::uri

// repl::Replica — a read-fleet member: consumes a publisher's frame
// stream and republishes each decoded snapshot into its OWN
// SnapshotStore, from which an unmodified serve::ConcurrentServer (or
// anything else that reads a store) serves bytes identical to the
// origin's.
//
// The replica is intentionally dumb: it never asks for anything, it
// just applies what arrives. FULL frames replace its state wholesale
// (that is both the initial sync and the resync-on-gap path — the
// publisher decides when to send one); DELTA frames apply against the
// exact snapshot the previous frame produced, and any mismatch is a
// WireError, never a silently wrong site. Because the store publishes
// each applied snapshot atomically, readers on this process see the
// same epoch semantics they would at the origin: complete snapshots,
// monotonic epochs, no torn state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/registry.hpp"
#include "repl/transport.hpp"
#include "serve/snapshot.hpp"

namespace navsep::repl {

struct ReplicaStats {
  std::size_t frames_applied = 0;
  std::size_t fulls_applied = 0;
  std::size_t deltas_applied = 0;
  std::uint64_t bytes_received = 0;  ///< wire bytes (headers + payloads)
  std::uint64_t epoch = 0;           ///< last applied epoch (0 = none yet)
};

class Replica {
 public:
  /// Adopt an already-connected stream (e.g. from Connection::connect
  /// or a Listener in tests).
  explicit Replica(Connection conn) : conn_(std::move(conn)) {}

  /// Connect to a publisher's endpoint.
  [[nodiscard]] static Replica connect(const Endpoint& endpoint) {
    return Replica(Connection::connect(endpoint));
  }

  ~Replica() { stop(); }
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The store this replica publishes into. Attach servers here.
  [[nodiscard]] serve::SnapshotStore& store() noexcept { return store_; }
  [[nodiscard]] const serve::SnapshotStore& store() const noexcept {
    return store_;
  }

  /// Read and apply exactly one frame. Returns false on clean EOF (the
  /// publisher closed the stream); throws WireError / TransportError on
  /// malformed or failed input. Not for use while start() is running.
  bool apply_next();

  /// Apply frames until EOF or stop(); returns the number applied.
  std::size_t run();

  /// Run() on a background thread. stop() (or destruction) ends it.
  void start();

  /// Shut the stream down and join the background thread, if any.
  /// Idempotent.
  void stop();

  /// Wait until the replica has applied `epoch` (or beyond). Returns
  /// false on timeout — including when the stream died first.
  [[nodiscard]] bool wait_for_epoch(std::uint64_t epoch,
                                    std::chrono::milliseconds timeout) const;

  [[nodiscard]] ReplicaStats stats() const;

  /// Empty while the stream is healthy; after run()/start() ends on an
  /// error, holds that error's message (EOF is not an error).
  [[nodiscard]] std::string error() const;

  /// Attach a metrics registry: registers a pull sampler mirroring
  /// stats() into `repl.rep.*` gauges and records an epoch-correlated
  /// `repl.apply` span per applied frame into the registry's SpanLog.
  /// Call BEFORE start() (it is not synchronized against the apply
  /// thread); the registry must outlive the replica. Pass nullptr to
  /// detach.
  void attach_telemetry(std::shared_ptr<obs::Registry> registry);

 private:
  Connection conn_;
  serve::SnapshotStore store_;
  std::shared_ptr<const serve::SiteSnapshot> current_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  std::atomic<std::size_t> frames_applied_{0};
  std::atomic<std::size_t> fulls_applied_{0};
  std::atomic<std::size_t> deltas_applied_{0};
  std::atomic<std::uint64_t> bytes_received_{0};

  mutable std::mutex error_mutex_;
  std::string error_;

  std::shared_ptr<obs::Registry> telemetry_;
  obs::SamplerHandle telemetry_sampler_;
};

}  // namespace navsep::repl

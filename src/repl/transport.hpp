// Socket transport for snapshot replication frames.
//
// This deliberately retires the DESIGN.md "no sockets" non-goal: the
// replication subsystem exists to move published epochs BETWEEN
// processes, which in-process maps cannot do. The transport stays as
// small as the repo's needs: blocking, stream-oriented, Unix-domain or
// loopback/LAN TCP, with frame boundaries supplied by the wire format's
// length-prefixed header — no protocol negotiation, no TLS, no partial
// writes surfacing to callers.
//
// Endpoints parse from the CLI-friendly specs
//   unix:/path/to/socket.sock
//   tcp:HOST:PORT            (PORT 0 binds an ephemeral port; the
//                             Listener reports the one it got)
//
// Every failure throws repl::TransportError; a clean peer close
// surfaces as read_frame() returning false — the replica's signal that
// the origin is gone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "repl/wire.hpp"

namespace navsep::repl {

/// Socket-layer failure (bind, connect, accept, read, write).
class TransportError : public Error {
 public:
  using Error::Error;
};

/// Where a publisher listens / a replica connects.
struct Endpoint {
  enum class Kind { Unix, Tcp };

  Kind kind = Kind::Tcp;
  std::string path;  ///< Unix: filesystem path of the socket
  std::string host;  ///< TCP: numeric or resolvable host ("127.0.0.1")
  std::uint16_t port = 0;  ///< TCP: 0 = ephemeral (Listener reports it)

  [[nodiscard]] static Endpoint unix_socket(std::string path);
  [[nodiscard]] static Endpoint tcp(std::string host, std::uint16_t port);

  /// Parse "unix:/path" or "tcp:host:port"; throws TransportError on
  /// anything else.
  [[nodiscard]] static Endpoint parse(std::string_view spec);

  [[nodiscard]] std::string to_string() const;
};

/// One connected, blocking, bidirectional byte stream (RAII over the
/// fd). Move-only. Frame-level IO lives here so publisher and replica
/// share one read/write path.
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) noexcept : fd_(fd) {}
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  ~Connection();

  [[nodiscard]] static Connection connect(const Endpoint& endpoint);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Write one complete wire frame (header + payload as produced by
  /// encode_frame). Throws TransportError when the peer is gone.
  void write_frame(std::string_view frame_bytes);

  /// Read one complete frame: header, validation, payload, checksum.
  /// Returns false on clean EOF at a frame boundary; throws
  /// TransportError on socket errors and WireError on malformed frames
  /// (including EOF mid-frame).
  [[nodiscard]] bool read_frame(Frame& out);

  /// Shut the socket down both ways, waking any thread blocked in
  /// read/write on it (their calls fail or report EOF). Safe to call
  /// from another thread; idempotent.
  void shutdown() noexcept;

  void close() noexcept;

 private:
  void write_all(const char* data, std::size_t n);
  [[nodiscard]] std::size_t read_some(char* data, std::size_t n);

  int fd_ = -1;
};

/// A bound, listening socket. For TCP with port 0 the bound ephemeral
/// port is reflected in endpoint(). Unix sockets unlink a stale path on
/// bind and unlink their own on close.
class Listener {
 public:
  explicit Listener(const Endpoint& endpoint);
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&&) = delete;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// The endpoint actually bound (TCP: with the resolved port).
  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoint_;
  }

  /// Wait up to `timeout_ms` for an inbound connection. Returns an
  /// empty optional on timeout or after close(); throws TransportError
  /// on socket errors. A bounded wait (rather than a plain blocking
  /// accept) is what lets the publisher's accept loop observe its stop
  /// flag without platform-specific wakeup tricks.
  [[nodiscard]] std::optional<Connection> accept(int timeout_ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  Endpoint endpoint_;
  bool unlink_on_close_ = false;
};

}  // namespace navsep::repl

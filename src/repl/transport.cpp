#include "repl/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace navsep::repl {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError("transport: " + what + ": " +
                       std::strerror(errno));
}

/// A write to a closed peer raises SIGPIPE by default, which would kill
/// the process instead of surfacing TransportError. Sent flag-less on
/// every send(); for the rare plain write() paths we ignore the signal
/// process-wide once.
void ignore_sigpipe_once() {
  static const int ignored = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return 0;
  }();
  (void)ignored;
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("transport: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("transport: not a numeric IPv4 host: " +
                         endpoint.host);
  }
  return addr;
}

}  // namespace

// --- Endpoint -----------------------------------------------------------------

Endpoint Endpoint::unix_socket(std::string path) {
  Endpoint e;
  e.kind = Kind::Unix;
  e.path = std::move(path);
  return e;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.kind = Kind::Tcp;
  e.host = std::move(host);
  e.port = port;
  return e;
}

Endpoint Endpoint::parse(std::string_view spec) {
  if (spec.rfind("unix:", 0) == 0) {
    std::string path(spec.substr(5));
    if (path.empty()) {
      throw TransportError("transport: empty unix socket path in '" +
                           std::string(spec) + "'");
    }
    return unix_socket(std::move(path));
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string_view rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw TransportError("transport: expected tcp:HOST:PORT, got '" +
                           std::string(spec) + "'");
    }
    unsigned long port = 0;
    for (char c : rest.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        throw TransportError("transport: non-numeric port in '" +
                             std::string(spec) + "'");
      }
      port = port * 10 + static_cast<unsigned long>(c - '0');
      if (port > 65535) {
        throw TransportError("transport: port out of range in '" +
                             std::string(spec) + "'");
      }
    }
    return tcp(std::string(rest.substr(0, colon)),
               static_cast<std::uint16_t>(port));
  }
  throw TransportError(
      "transport: endpoint must be unix:/path or tcp:HOST:PORT, got '" +
      std::string(spec) + "'");
}

std::string Endpoint::to_string() const {
  return kind == Kind::Unix ? "unix:" + path
                            : "tcp:" + host + ":" + std::to_string(port);
}

// --- Connection ---------------------------------------------------------------

Connection::Connection(Connection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Connection::~Connection() { close(); }

Connection Connection::connect(const Endpoint& endpoint) {
  ignore_sigpipe_once();
  const int domain = endpoint.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  Connection conn(fd);
  int rc;
  if (endpoint.kind == Endpoint::Kind::Unix) {
    sockaddr_un addr = unix_address(endpoint.path);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr = tcp_address(endpoint);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc != 0) fail("connect to " + endpoint.to_string());
  if (endpoint.kind == Endpoint::Kind::Tcp) {
    // Frames are written whole; Nagle only adds latency between them.
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return conn;
}

void Connection::write_all(const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::send(fd_, data, n, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    data += written;
    n -= static_cast<std::size_t>(written);
  }
}

std::size_t Connection::read_some(char* data, std::size_t n) {
  while (true) {
    const ssize_t got = ::recv(fd_, data, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    return static_cast<std::size_t>(got);
  }
}

void Connection::write_frame(std::string_view frame_bytes) {
  if (!valid()) throw TransportError("transport: write on closed connection");
  write_all(frame_bytes.data(), frame_bytes.size());
}

bool Connection::read_frame(Frame& out) {
  if (!valid()) throw TransportError("transport: read on closed connection");
  char header[kFrameHeaderSize];
  std::size_t have = 0;
  while (have < kFrameHeaderSize) {
    const std::size_t got = read_some(header + have, kFrameHeaderSize - have);
    if (got == 0) {
      if (have == 0) return false;  // clean EOF between frames
      throw WireError("wire: stream ended inside a frame header");
    }
    have += got;
  }
  const FrameHeader decoded =
      decode_frame_header(std::string_view(header, kFrameHeaderSize));
  std::string payload(decoded.payload_size, '\0');
  have = 0;
  while (have < payload.size()) {
    const std::size_t got = read_some(payload.data() + have,
                                      payload.size() - have);
    if (got == 0) {
      throw WireError("wire: stream ended inside a frame payload");
    }
    have += got;
  }
  verify_payload(decoded, payload);
  out.type = decoded.type;
  out.payload = std::move(payload);
  return true;
}

void Connection::shutdown() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

void Connection::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// --- Listener -----------------------------------------------------------------

Listener::Listener(const Endpoint& endpoint) : endpoint_(endpoint) {
  ignore_sigpipe_once();
  const int domain =
      endpoint.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
  fd_ = ::socket(domain, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  if (endpoint.kind == Endpoint::Kind::Unix) {
    // A previous run's socket file would make bind fail; it is dead by
    // construction (we hold no other listener on it).
    (void)::unlink(endpoint.path.c_str());
    sockaddr_un addr = unix_address(endpoint.path);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      (void)::close(fd_);
      errno = saved;
      fail("bind " + endpoint.to_string());
    }
    unlink_on_close_ = true;
  } else {
    int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_address(endpoint);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const int saved = errno;
      (void)::close(fd_);
      errno = saved;
      fail("bind " + endpoint.to_string());
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      endpoint_.port = ntohs(addr.sin_port);
    }
  }
  if (::listen(fd_, 16) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    fail("listen " + endpoint.to_string());
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      unlink_on_close_(std::exchange(other.unlink_on_close_, false)) {}

Listener::~Listener() { close(); }

std::optional<Connection> Listener::accept(int timeout_ms) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    fail("poll");
  }
  if (ready == 0) return std::nullopt;
  const int conn_fd = ::accept(fd_, nullptr, nullptr);
  if (conn_fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL ||
        errno == EBADF) {
      return std::nullopt;  // racing a close(): report "nothing accepted"
    }
    fail("accept");
  }
  if (endpoint_.kind == Endpoint::Kind::Tcp) {
    int one = 1;
    (void)::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Connection(conn_fd);
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    (void)::unlink(endpoint_.path.c_str());
    unlink_on_close_ = false;
  }
}

}  // namespace navsep::repl

#include "repl/wire.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

namespace navsep::repl {

namespace {

// Sanity ceilings: a malformed length prefix must fail fast, not
// allocate the universe. Generous enough for any realistic site.
constexpr std::uint64_t kMaxPayload = 1ull << 33;   // 8 GiB
constexpr std::uint32_t kMaxString = 1u << 31;      // 2 GiB
constexpr std::uint32_t kMaxCount = 1u << 28;       // 256M records

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void raw(const void* v, std::size_t n) {
    // Fixed-width little-endian, byte by byte: independent of host
    // endianness (the wire may cross machines).
    const auto* bytes = static_cast<const unsigned char*>(v);
    std::uint64_t value = 0;
    std::memcpy(&value, bytes, n);
    for (std::size_t i = 0; i < n; ++i) {
      out_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(uint_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(uint_le(4)); }
  std::uint64_t u64() { return uint_le(8); }
  std::string_view str() {
    const std::uint32_t n = u32();
    if (n > kMaxString) throw WireError("wire: string length out of range");
    return take(n);
  }
  std::uint32_t count() {
    const std::uint32_t n = u32();
    if (n > kMaxCount) throw WireError("wire: record count out of range");
    return n;
  }
  /// A count whose records each occupy at least `min_record_bytes` on
  /// the wire. Decoders that pre-allocate `n` records must use this
  /// form: a corrupted count can then never demand more memory than the
  /// remaining payload could possibly justify — the per-record reads
  /// would have thrown anyway, but only AFTER a resize(n) tried to
  /// allocate gigabytes.
  std::uint32_t count(std::size_t min_record_bytes) {
    const std::uint32_t n = count();
    if (n > remaining() / min_record_bytes) {
      throw WireError("wire: record count exceeds remaining payload");
    }
    return n;
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  std::string_view take(std::size_t n) {
    if (bytes_.size() - pos_ < n) {
      throw WireError("wire: truncated payload (needed " + std::to_string(n) +
                      " bytes at offset " + std::to_string(pos_) + ")");
    }
    std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::uint64_t uint_le(std::size_t n) {
    std::string_view raw = take(n);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < n; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(raw[i]))
               << (8 * i);
    }
    return value;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

void require(bool ok, const char* what) {
  if (!ok) throw WireError(std::string("wire: ") + what);
}

// --- shared record encodings --------------------------------------------------

void write_snapshot_arcs(ByteWriter& w,
                         const std::vector<serve::SnapshotArc>& arcs) {
  w.u32(static_cast<std::uint32_t>(arcs.size()));
  for (const serve::SnapshotArc& arc : arcs) {
    w.str(arc.from);
    w.str(arc.to);
    w.str(arc.arcrole);
    w.str(arc.title);
    w.u8(arc.traversable ? 1 : 0);
  }
}

std::vector<serve::SnapshotArc> read_snapshot_arcs(ByteReader& r) {
  // Each arc is ≥ four length prefixes + the traversable byte.
  std::vector<serve::SnapshotArc> arcs(r.count(17));
  for (serve::SnapshotArc& arc : arcs) {
    arc.from = std::string(r.str());
    arc.to = std::string(r.str());
    arc.arcrole = std::string(r.str());
    arc.title = std::string(r.str());
    arc.traversable = r.u8() != 0;
  }
  return arcs;
}

void write_nav_arcs(ByteWriter& w, const std::vector<const core::NavArc*>& arcs) {
  w.u32(static_cast<std::uint32_t>(arcs.size()));
  for (const core::NavArc* arc : arcs) {
    w.str(arc->from);
    w.str(arc->to);
    w.str(arc->role);
    w.str(arc->title);
    w.str(arc->context);
    w.u32(static_cast<std::uint32_t>(arc->ordinal));
  }
}

void read_nav_arcs(ByteReader& r, std::string_view source,
                   std::vector<core::NavArc>& out) {
  // Each arc is ≥ five length prefixes + the ordinal.
  const std::uint32_t n = r.count(24);
  out.reserve(out.size() + n);
  for (std::uint32_t i = 0; i < n; ++i) {
    core::NavArc arc;
    arc.from = std::string(r.str());
    arc.to = std::string(r.str());
    arc.role = std::string(r.str());
    arc.title = std::string(r.str());
    arc.context = std::string(r.str());
    arc.ordinal = r.u32();
    arc.source = std::string(source);  // implied by the segment
    out.push_back(std::move(arc));
  }
}

void write_profiles(ByteWriter& w, const std::vector<nav::Profile>& profiles) {
  w.u32(static_cast<std::uint32_t>(profiles.size()));
  for (const nav::Profile& profile : profiles) {
    w.str(profile.name);
    w.u32(static_cast<std::uint32_t>(profile.families.size()));
    for (const std::string& family : profile.families) w.str(family);
  }
}

std::vector<nav::Profile> read_profiles(ByteReader& r) {
  std::vector<nav::Profile> profiles(r.count(8));
  for (nav::Profile& profile : profiles) {
    profile.name = std::string(r.str());
    profile.families.resize(r.count(4));
    for (std::string& family : profile.families) {
      family = std::string(r.str());
    }
  }
  return profiles;
}

void write_families(
    ByteWriter& w,
    const std::vector<serve::SnapshotOverlayInputs::Family>& families) {
  w.u32(static_cast<std::uint32_t>(families.size()));
  for (const auto& family : families) {
    w.str(family.name);
    w.str(family.source);
  }
}

std::vector<serve::SnapshotOverlayInputs::Family> read_families(ByteReader& r) {
  std::vector<serve::SnapshotOverlayInputs::Family> families(r.count(8));
  for (auto& family : families) {
    family.name = std::string(r.str());
    family.source = std::string(r.str());
  }
  return families;
}

void write_route_table(ByteWriter& w, const serve::RouteTable* table) {
  if (table == nullptr) {
    w.u8(0);
    return;
  }
  w.u8(1);
  w.u32(static_cast<std::uint32_t>(table->entries.size()));
  for (const serve::RouteTable::Entry& entry : table->entries) {
    w.str(entry.program.name);
    w.str(entry.program.expression);
    w.u8(static_cast<std::uint8_t>(entry.program.compile));
    w.str(entry.source);
  }
  w.u32(static_cast<std::uint32_t>(table->titles.size()));
  for (const auto& [id, title] : table->titles) {
    w.str(id);
    w.str(title);
  }
}

std::shared_ptr<const serve::RouteTable> read_route_table(ByteReader& r) {
  if (r.u8() == 0) return nullptr;
  auto table = std::make_shared<serve::RouteTable>();
  // Each entry is ≥ three length prefixes + the compile-mode byte.
  table->entries.resize(r.count(13));
  for (serve::RouteTable::Entry& entry : table->entries) {
    entry.program.name = std::string(r.str());
    entry.program.expression = std::string(r.str());
    const std::uint8_t compile = r.u8();
    if (compile > static_cast<std::uint8_t>(nav::RouteCompile::Lazy)) {
      throw WireError("wire: unknown route compile mode " +
                      std::to_string(compile));
    }
    entry.program.compile = static_cast<nav::RouteCompile>(compile);
    entry.source = std::string(r.str());
  }
  const std::uint32_t n_titles = r.count();
  for (std::uint32_t i = 0; i < n_titles; ++i) {
    std::string id(r.str());
    table->titles.emplace(std::move(id), std::string(r.str()));
  }
  return table;
}

/// The combined arc set partitioned by NavArc::source in first-
/// appearance order — the delta's unit of change. Pointers into `arcs`.
struct Segment {
  std::string_view source;
  std::vector<const core::NavArc*> arcs;
};

std::vector<Segment> segment_arcs(const std::vector<core::NavArc>& arcs) {
  std::vector<Segment> segments;
  for (const core::NavArc& arc : arcs) {
    if (segments.empty() || segments.back().source != arc.source) {
      auto it = std::find_if(
          segments.begin(), segments.end(),
          [&](const Segment& s) { return s.source == arc.source; });
      if (it != segments.end()) {
        it->arcs.push_back(&arc);
        continue;
      }
      segments.push_back(Segment{arc.source, {}});
    }
    segments.back().arcs.push_back(&arc);
  }
  return segments;
}

/// The per-page slice-hash table of one source (null = no arcs, which
/// slice_hash_for treats as all-empty slices).
const serve::PageSliceHashes* hashes_for(const serve::SiteSnapshot& snapshot,
                                         std::string_view source) {
  if (snapshot.slice_hashes() == nullptr) return nullptr;
  auto it = snapshot.slice_hashes()->find(source);
  return it == snapshot.slice_hashes()->end() ? nullptr : &it->second;
}

/// Hash-table equality = segment-content equality (the PR 5 convention:
/// hash equality stands in for content equality, 2⁻⁶⁴ collision budget).
bool segment_unchanged(const serve::SiteSnapshot& prev,
                       const serve::SiteSnapshot& next,
                       std::string_view source) {
  const serve::PageSliceHashes* a = hashes_for(prev, source);
  const serve::PageSliceHashes* b = hashes_for(next, source);
  if (a == nullptr || b == nullptr) return a == nullptr && b == nullptr;
  return *a == *b;
}

}  // namespace

std::uint64_t wire_checksum(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  ByteWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(payload.size());
  w.u64(wire_checksum(payload));
  std::string frame = w.take();
  frame.append(payload);
  return frame;
}

FrameHeader decode_frame_header(std::string_view header_bytes) {
  require(header_bytes.size() >= kFrameHeaderSize, "short frame header");
  ByteReader r(header_bytes.substr(0, kFrameHeaderSize));
  require(r.u32() == kWireMagic, "bad magic (not a navsep wire frame)");
  FrameHeader header;
  header.version = r.u16();
  require(header.version == kWireVersion, "unsupported wire version");
  const std::uint16_t type = r.u16();
  require(type == static_cast<std::uint16_t>(FrameType::Full) ||
              type == static_cast<std::uint16_t>(FrameType::Delta),
          "unknown frame type");
  header.type = static_cast<FrameType>(type);
  header.payload_size = r.u64();
  require(header.payload_size <= kMaxPayload, "payload size out of range");
  header.checksum = r.u64();
  return header;
}

void verify_payload(const FrameHeader& header, std::string_view payload) {
  require(payload.size() == header.payload_size, "payload length mismatch");
  require(wire_checksum(payload) == header.checksum,
          "payload checksum mismatch (corrupt frame)");
}

Frame parse_frame(std::string_view bytes) {
  FrameHeader header = decode_frame_header(bytes);
  std::string_view payload = bytes.substr(kFrameHeaderSize);
  verify_payload(header, payload);
  return Frame{header.type, std::string(payload)};
}

// --- FULL ---------------------------------------------------------------------

std::string encode_full(const serve::SiteSnapshot& snapshot) {
  ByteWriter w;
  w.u64(snapshot.epoch());
  w.str(snapshot.base());

  w.u32(static_cast<std::uint32_t>(snapshot.files().size()));
  for (const auto& [path, body] : snapshot.files()) {
    w.str(path);
    w.str(*body);
  }

  w.u32(static_cast<std::uint32_t>(snapshot.traversal_arcs().size()));
  for (const auto& [from, arcs] : snapshot.traversal_arcs()) {
    w.str(from);
    write_snapshot_arcs(w, arcs);
  }

  if (!snapshot.overlays_enabled()) {
    w.u8(0);
    // The profile table still ships: a base-only snapshot may carry
    // (empty-family) profiles that must keep resolving on the replica.
    write_profiles(w, snapshot.profiles());
    write_route_table(w, snapshot.route_table().get());
    return w.take();
  }
  w.u8(1);
  w.str(snapshot.structure_source());
  write_families(w, snapshot.overlay_families());
  const std::vector<Segment> segments = segment_arcs(*snapshot.overlay_arcs());
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const Segment& segment : segments) {
    w.str(segment.source);
    write_nav_arcs(w, segment.arcs);
  }
  write_profiles(w, snapshot.profiles());
  write_route_table(w, snapshot.route_table().get());
  return w.take();
}

std::shared_ptr<const serve::SiteSnapshot> decode_full(
    std::string_view payload) {
  ByteReader r(payload);
  serve::SnapshotState state;
  state.epoch = r.u64();
  state.base = std::string(r.str());

  const std::uint32_t n_files = r.count();
  for (std::uint32_t i = 0; i < n_files; ++i) {
    std::string path(r.str());
    auto body = std::make_shared<const std::string>(r.str());
    state.files.emplace(std::move(path), std::move(body));
  }

  const std::uint32_t n_buckets = r.count();
  for (std::uint32_t i = 0; i < n_buckets; ++i) {
    std::string from(r.str());
    state.arcs_by_from.emplace(std::move(from), read_snapshot_arcs(r));
  }

  if (r.u8() != 0) {
    state.overlays.structure_source = std::string(r.str());
    state.overlays.families = read_families(r);
    auto arcs = std::make_shared<std::vector<core::NavArc>>();
    const std::uint32_t n_segments = r.count();
    for (std::uint32_t i = 0; i < n_segments; ++i) {
      std::string source(r.str());
      read_nav_arcs(r, source, *arcs);
    }
    state.overlays.arcs = std::move(arcs);
    // slice_hashes stay null: the snapshot derives them (the explicit
    // derive-when-absent path — identical fold to the origin's).
  }
  state.overlays.profiles = read_profiles(r);
  state.overlays.routes = read_route_table(r);
  require(r.exhausted(), "trailing bytes after FULL payload");
  return std::make_shared<serve::SiteSnapshot>(std::move(state));
}

// --- DELTA --------------------------------------------------------------------

std::string encode_delta(const serve::SiteSnapshot& prev,
                         const serve::SiteSnapshot& next) {
  if (next.epoch() <= prev.epoch()) {
    throw WireError("wire: delta epochs must advance (from " +
                    std::to_string(prev.epoch()) + " to " +
                    std::to_string(next.epoch()) + ")");
  }
  if (prev.base() != next.base()) {
    throw WireError("wire: delta across different site bases (" +
                    prev.base() + " vs " + next.base() + ")");
  }
  ByteWriter w;
  w.u64(prev.epoch());
  w.u64(next.epoch());
  w.str(next.base());

  // Artifacts: shared-handle identity is content identity (artifacts
  // swap, never mutate); compare bytes only when handles differ, so an
  // epoch that republished identical bytes under a fresh handle still
  // ships nothing.
  ByteWriter changed_files;
  std::uint32_t n_changed_files = 0;
  for (const auto& [path, body] : next.files()) {
    auto it = prev.files().find(path);
    if (it != prev.files().end() &&
        (it->second == body || *it->second == *body)) {
      continue;
    }
    changed_files.str(path);
    changed_files.str(*body);
    ++n_changed_files;
  }
  w.u32(n_changed_files);
  std::string changed_bytes = changed_files.take();
  // (ByteWriter has no splice; append the pre-counted record block.)
  std::string out = w.take();
  out.append(changed_bytes);
  ByteWriter w2;
  std::uint32_t n_removed_files = 0;
  for (const auto& [path, body] : prev.files()) {
    if (next.files().find(path) == next.files().end()) {
      w2.str(path);
      ++n_removed_files;
    }
  }
  {
    ByteWriter countw;
    countw.u32(n_removed_files);
    out.append(countw.take());
    out.append(w2.take());
  }

  // Traversal buckets, by value equality per from-URI.
  ByteWriter buckets;
  std::uint32_t n_changed_buckets = 0;
  for (const auto& [from, arcs] : next.traversal_arcs()) {
    auto it = prev.traversal_arcs().find(from);
    if (it != prev.traversal_arcs().end() && it->second == arcs) continue;
    buckets.str(from);
    write_snapshot_arcs(buckets, arcs);
    ++n_changed_buckets;
  }
  ByteWriter removed_buckets;
  std::uint32_t n_removed_buckets = 0;
  for (const auto& [from, arcs] : prev.traversal_arcs()) {
    if (next.traversal_arcs().find(from) == next.traversal_arcs().end()) {
      removed_buckets.str(from);
      ++n_removed_buckets;
    }
  }
  {
    ByteWriter countw;
    countw.u32(n_changed_buckets);
    out.append(countw.take());
    out.append(buckets.take());
    ByteWriter countw2;
    countw2.u32(n_removed_buckets);
    out.append(countw2.take());
    out.append(removed_buckets.take());
  }

  // Route tables ride like arc segments: unchanged tables (pointer
  // identity — the engine keeps it across epochs — or value equality as
  // the fallback) cost one carry byte; only a changed table ships.
  const serve::RouteTable* prev_routes = prev.route_table().get();
  const serve::RouteTable* next_routes = next.route_table().get();
  const bool routes_carry =
      prev_routes == next_routes ||
      (prev_routes != nullptr && next_routes != nullptr &&
       *prev_routes == *next_routes);

  ByteWriter tail;
  if (!next.overlays_enabled()) {
    tail.u8(0);
    write_profiles(tail, next.profiles());
    tail.u8(routes_carry ? 0 : 1);
    if (!routes_carry) write_route_table(tail, next_routes);
    out.append(tail.take());
    return out;
  }
  tail.u8(1);
  tail.str(next.structure_source());
  write_families(tail, next.overlay_families());
  // Segment selection is slice-hash-driven: a source whose per-page
  // hash table is identical in both snapshots is carried forward by
  // reference (one byte on the wire); only moved segments ship arcs.
  const std::vector<Segment> segments = segment_arcs(*next.overlay_arcs());
  tail.u32(static_cast<std::uint32_t>(segments.size()));
  const bool prev_has_overlays = prev.overlays_enabled();
  for (const Segment& segment : segments) {
    tail.str(segment.source);
    const bool carry =
        prev_has_overlays && segment_unchanged(prev, next, segment.source);
    tail.u8(carry ? 0 : 1);
    if (!carry) write_nav_arcs(tail, segment.arcs);
  }
  write_profiles(tail, next.profiles());
  tail.u8(routes_carry ? 0 : 1);
  if (!routes_carry) write_route_table(tail, next_routes);
  out.append(tail.take());
  return out;
}

std::shared_ptr<const serve::SiteSnapshot> apply_delta(
    std::string_view payload, const serve::SiteSnapshot& prev) {
  ByteReader r(payload);
  const std::uint64_t from_epoch = r.u64();
  const std::uint64_t to_epoch = r.u64();
  if (from_epoch != prev.epoch()) {
    throw WireError("wire: delta from epoch " + std::to_string(from_epoch) +
                    " cannot apply to snapshot at epoch " +
                    std::to_string(prev.epoch()) + " (resync required)");
  }
  require(to_epoch > from_epoch, "delta epochs must advance");
  serve::SnapshotState state;
  state.epoch = to_epoch;
  state.base = std::string(r.str());
  if (state.base != prev.base()) {
    throw WireError("wire: delta base '" + state.base +
                    "' does not match snapshot base '" + prev.base() + "'");
  }

  state.files = prev.files();  // shared handles, cheap
  const std::uint32_t n_changed_files = r.count();
  for (std::uint32_t i = 0; i < n_changed_files; ++i) {
    std::string path(r.str());
    state.files[std::move(path)] =
        std::make_shared<const std::string>(r.str());
  }
  const std::uint32_t n_removed_files = r.count();
  for (std::uint32_t i = 0; i < n_removed_files; ++i) {
    state.files.erase(state.files.find(std::string(r.str())));
  }

  state.arcs_by_from = prev.traversal_arcs();
  const std::uint32_t n_changed_buckets = r.count();
  for (std::uint32_t i = 0; i < n_changed_buckets; ++i) {
    std::string from(r.str());
    state.arcs_by_from[std::move(from)] = read_snapshot_arcs(r);
  }
  const std::uint32_t n_removed_buckets = r.count();
  for (std::uint32_t i = 0; i < n_removed_buckets; ++i) {
    state.arcs_by_from.erase(std::string(r.str()));
  }

  if (r.u8() != 0) {
    state.overlays.structure_source = std::string(r.str());
    state.overlays.families = read_families(r);
    // Reassemble the combined arc set: carried segments copy the
    // previous snapshot's arcs for that source (order preserved),
    // inline segments decode from the wire.
    std::map<std::string_view, std::vector<const core::NavArc*>> prev_by_source;
    if (prev.overlay_arcs() != nullptr) {
      for (const core::NavArc& arc : *prev.overlay_arcs()) {
        prev_by_source[arc.source].push_back(&arc);
      }
    }
    auto arcs = std::make_shared<std::vector<core::NavArc>>();
    const std::uint32_t n_segments = r.count();
    for (std::uint32_t i = 0; i < n_segments; ++i) {
      std::string source(r.str());
      if (r.u8() == 0) {
        auto it = prev_by_source.find(source);
        if (it == prev_by_source.end()) {
          throw WireError("wire: delta carries forward segment '" + source +
                          "' the previous snapshot does not hold");
        }
        arcs->reserve(arcs->size() + it->second.size());
        for (const core::NavArc* arc : it->second) arcs->push_back(*arc);
      } else {
        read_nav_arcs(r, source, *arcs);
      }
    }
    state.overlays.arcs = std::move(arcs);
  }
  state.overlays.profiles = read_profiles(r);
  if (r.u8() == 0) {
    state.overlays.routes = prev.route_table();  // carried forward
  } else {
    state.overlays.routes = read_route_table(r);
  }
  require(r.exhausted(), "trailing bytes after DELTA payload");
  return std::make_shared<serve::SiteSnapshot>(std::move(state));
}

std::shared_ptr<const serve::SiteSnapshot> apply_frame(
    const Frame& frame,
    const std::shared_ptr<const serve::SiteSnapshot>& prev) {
  switch (frame.type) {
    case FrameType::Full:
      return decode_full(frame.payload);
    case FrameType::Delta:
      if (prev == nullptr) {
        throw WireError(
            "wire: DELTA frame with no base snapshot (a stream must open "
            "with FULL)");
      }
      return apply_delta(frame.payload, *prev);
  }
  throw WireError("wire: unknown frame type");
}

}  // namespace navsep::repl

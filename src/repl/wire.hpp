// Snapshot replication wire format — how a published SiteSnapshot
// travels between processes.
//
// The paper's separation is what makes replication cheap: navigation
// lives in linkbases apart from content, so a context-family edit moves
// kilobytes of authored arcs, never the site. The wire format mirrors
// that asymmetry with two frame kinds over one versioned, checksummed,
// length-prefixed binary framing:
//
//   FULL   — the complete snapshot state (artifact bytes, traversal
//            arc buckets, overlay inputs: combined arc segments per
//            linkbase source, family table, profile table, route
//            table). Sent on subscribe (mid-stream connect) and on
//            resync when a replica's last-acknowledged epoch lags too
//            far.
//   DELTA  — only what moved between two epochs: artifacts whose bytes
//            changed (or vanished), traversal buckets whose arcs
//            changed, and per-linkbase arc segments whose PR 5
//            per-(page, family) slice hashes changed. Unchanged
//            segments are carried forward from the replica's previous
//            snapshot by reference, so a single family edit ships that
//            family's segment plus the re-authored linkbase artifact —
//            kilobytes, not the site. The route table rides the same
//            way: one changed-flag byte carries an unchanged table
//            forward from the replica's previous snapshot (pointer or
//            value equality on the publisher), only a changed table
//            ships inline.
//
// Slice hashes themselves are deliberately NOT on the wire: the decoder
// rebuilds every snapshot through SiteSnapshot::derive_slice_hashes —
// the same combine_arc_slice fold the origin threads from its arc-table
// rebuild — so origin-threaded and replica-derived tables are identical
// by construction (tests/repl_test.cpp pins it) and the wire stays lean.
//
// Framing: a 24-byte header (magic "NSRW", format version, frame type,
// payload length, FNV-1a checksum of the payload) followed by the
// payload. Integers are fixed-width little-endian; strings are
// u32-length-prefixed bytes. Decoding is fully bounds-checked and
// throws repl::WireError on any malformed input — a replica fed garbage
// fails loudly, it never publishes a torn snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "serve/snapshot.hpp"

namespace navsep::repl {

/// Malformed wire input: bad magic, unsupported version, checksum
/// mismatch, truncated payload, or a delta applied against the wrong
/// base snapshot.
class WireError : public Error {
 public:
  using Error::Error;
};

inline constexpr std::uint32_t kWireMagic = 0x4E535257u;  // "NSRW"
inline constexpr std::uint16_t kWireVersion = 2;  // v2: route tables
inline constexpr std::size_t kFrameHeaderSize = 24;

enum class FrameType : std::uint16_t {
  Full = 1,   ///< complete snapshot state
  Delta = 2,  ///< changes from one epoch to a later one
};

/// Decoded frame header. `payload_size` is the byte count following the
/// header; `checksum` is wire_checksum() of exactly those bytes.
struct FrameHeader {
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::Full;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
};

/// One framed message: type + raw payload (header already verified).
struct Frame {
  FrameType type = FrameType::Full;
  std::string payload;
};

/// FNV-1a over `bytes` — the frame integrity check.
[[nodiscard]] std::uint64_t wire_checksum(std::string_view bytes) noexcept;

/// Prepend the 24-byte header (magic, version, `type`, length,
/// checksum) to `payload`, returning the complete frame bytes.
[[nodiscard]] std::string encode_frame(FrameType type,
                                       std::string_view payload);

/// Decode and validate a frame header (throws WireError on bad magic,
/// version, type, or an absurd payload size). `header_bytes` must be at
/// least kFrameHeaderSize bytes.
[[nodiscard]] FrameHeader decode_frame_header(std::string_view header_bytes);

/// Verify `payload` against `header` (length + checksum); throws
/// WireError on mismatch.
void verify_payload(const FrameHeader& header, std::string_view payload);

/// Parse one complete frame from `bytes` (header + payload, verified).
/// Throws WireError when `bytes` is not exactly one well-formed frame.
[[nodiscard]] Frame parse_frame(std::string_view bytes);

// --- snapshot encodings -------------------------------------------------------

/// Encode `snapshot` as a FULL payload (pass to encode_frame(Full, …)).
[[nodiscard]] std::string encode_full(const serve::SiteSnapshot& snapshot);

/// Encode the change from `prev` to `next` as a DELTA payload. Artifact
/// and traversal-bucket changes are detected by content (shared-handle
/// identity first, bytes second); overlay arc segments are selected by
/// the per-(page, family) slice-hash tables — a segment whose hash table
/// is unchanged is shipped as a carry-forward reference, not bytes.
/// `next.epoch()` must exceed `prev.epoch()` and both must share a base.
[[nodiscard]] std::string encode_delta(const serve::SiteSnapshot& prev,
                                       const serve::SiteSnapshot& next);

/// Decode a FULL payload into a fresh snapshot (slice hashes derived).
[[nodiscard]] std::shared_ptr<const serve::SiteSnapshot> decode_full(
    std::string_view payload);

/// Apply a DELTA payload on top of `prev`, producing the next snapshot.
/// Throws WireError when the delta's from-epoch or base does not match
/// `prev` — a delta is only valid against the exact snapshot it was
/// computed from (the resync protocol exists for every other case).
[[nodiscard]] std::shared_ptr<const serve::SiteSnapshot> apply_delta(
    std::string_view payload, const serve::SiteSnapshot& prev);

/// Dispatch on `frame.type`: decode_full for Full (prev may be null),
/// apply_delta(prev) for Delta (prev must not be null — throws
/// WireError otherwise).
[[nodiscard]] std::shared_ptr<const serve::SiteSnapshot> apply_frame(
    const Frame& frame,
    const std::shared_ptr<const serve::SiteSnapshot>& prev);

}  // namespace navsep::repl

// repl::Publisher — streams a SnapshotStore's published epochs to
// subscribed replicas.
//
// The origin engine keeps its single-writer contract untouched: the
// publisher only ever READS the store (current()/epoch() — wait-free
// against the writer, like any other reader), so attaching one to a
// live engine costs the mutation path nothing. Each accepted subscriber
// gets its own streaming thread that:
//
//   1. sends a FULL frame of the currently published snapshot (the
//      mid-stream-connect resync — a replica can join at any epoch),
//   2. then watches the store and, on every epoch advance, sends the
//      change as a DELTA computed from the LAST FRAME THAT SUBSCRIBER
//      was sent to the now-current snapshot — per-subscriber state, so
//      a slow replica coalesces a burst of epochs into one delta,
//   3. unless the subscriber lags by more than max_delta_gap epochs, in
//      which case it falls back to a fresh FULL frame (the resync-on-
//      gap rule: past K epochs a delta chain is likely bigger — and
//      slower to apply — than the site itself).
//
// Frames a subscriber can no longer receive (broken pipe) end that
// subscriber's thread; everyone else streams on.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "repl/transport.hpp"
#include "serve/snapshot.hpp"

namespace navsep::repl {

struct PublisherOptions {
  /// Epoch gap beyond which a lagging subscriber is resynced with a
  /// FULL frame instead of a delta.
  std::uint64_t max_delta_gap = 8;

  /// How often a streaming thread re-probes the store's epoch (one
  /// relaxed atomic load per probe).
  int poll_interval_ms = 1;

  /// How long the accept loop waits per poll before re-checking the
  /// stop flag.
  int accept_timeout_ms = 50;

  /// Optional metrics registry: the publisher registers a pull sampler
  /// mirroring stats() into `repl.pub.*` gauges and records
  /// epoch-correlated spans (repl.encode / repl.ship) into the
  /// registry's SpanLog. The registry must outlive the publisher.
  std::shared_ptr<obs::Registry> telemetry;
};

class Publisher {
 public:
  /// Serve `store`'s epochs on `listener`. The store must outlive the
  /// publisher; it needs no published snapshot yet — subscribers wait
  /// for the first epoch.
  Publisher(const serve::SnapshotStore& store, Listener listener,
            PublisherOptions options = {});
  ~Publisher();
  Publisher(const Publisher&) = delete;
  Publisher& operator=(const Publisher&) = delete;

  /// The endpoint subscribers connect to (TCP: with the resolved port).
  [[nodiscard]] const Endpoint& endpoint() const noexcept {
    return endpoint_;
  }

  /// Stop accepting, disconnect every subscriber, join all threads.
  /// Idempotent; the destructor calls it.
  void stop();

  struct Stats {
    std::size_t subscribers_accepted = 0;
    std::size_t subscribers_active = 0;
    std::size_t full_frames = 0;   ///< FULL frames sent (incl. resyncs)
    std::size_t delta_frames = 0;  ///< DELTA frames sent
    std::size_t resync_fulls = 0;  ///< FULLs forced by gap > max_delta_gap
    std::uint64_t full_bytes = 0;  ///< wire bytes of FULL frames
    std::uint64_t delta_bytes = 0; ///< wire bytes of DELTA frames
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Subscriber {
    Connection conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void stream_to(Subscriber& subscriber);

  const serve::SnapshotStore* store_;
  Listener listener_;
  Endpoint endpoint_;
  PublisherOptions options_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex subscribers_mutex_;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
  std::thread accept_thread_;

  std::atomic<std::size_t> accepted_{0};
  std::atomic<std::size_t> full_frames_{0};
  std::atomic<std::size_t> delta_frames_{0};
  std::atomic<std::size_t> resync_fulls_{0};
  std::atomic<std::uint64_t> full_bytes_{0};
  std::atomic<std::uint64_t> delta_bytes_{0};

  obs::SamplerHandle telemetry_sampler_;
};

}  // namespace navsep::repl

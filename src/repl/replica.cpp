#include "repl/replica.hpp"

#include <utility>

namespace navsep::repl {

bool Replica::apply_next() {
  Frame frame;
  if (!conn_.read_frame(frame)) return false;
  auto next = apply_frame(frame, current_);
  // Count the frame BEFORE publishing: wait_for_epoch() wakes on the
  // store's epoch, so the stats a waiter reads afterwards must already
  // include the frame that advanced it.
  bytes_received_.fetch_add(kFrameHeaderSize + frame.payload.size(),
                            std::memory_order_relaxed);
  if (frame.type == FrameType::Full) {
    fulls_applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  frames_applied_.fetch_add(1, std::memory_order_relaxed);
  // Publish BEFORE updating current_: if the store rejects the epoch
  // (it never should — the publisher only moves forward), the replica's
  // frame chain stays consistent with what readers can see.
  store_.publish(next);
  current_ = std::move(next);
  return true;
}

std::size_t Replica::run() {
  std::size_t applied = 0;
  try {
    while (!stopping_.load(std::memory_order_acquire) && apply_next()) {
      ++applied;
    }
  } catch (const Error& e) {
    if (!stopping_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      error_ = e.what();
    }
    // When stop() shut the socket down under us the failure is the
    // expected wakeup, not an error worth recording.
  }
  return applied;
}

void Replica::start() {
  thread_ = std::thread([this] { (void)run(); });
}

void Replica::stop() {
  stopping_.store(true, std::memory_order_release);
  conn_.shutdown();
  if (thread_.joinable()) thread_.join();
}

bool Replica::wait_for_epoch(std::uint64_t epoch,
                             std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (store_.epoch() < epoch) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

ReplicaStats Replica::stats() const {
  ReplicaStats s;
  s.frames_applied = frames_applied_.load(std::memory_order_relaxed);
  s.fulls_applied = fulls_applied_.load(std::memory_order_relaxed);
  s.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.epoch = store_.epoch();
  return s;
}

std::string Replica::error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

}  // namespace navsep::repl

#include "repl/replica.hpp"

#include <utility>

namespace navsep::repl {

bool Replica::apply_next() {
  Frame frame;
  if (!conn_.read_frame(frame)) return false;
  obs::ScopedSpan span(telemetry_ != nullptr ? &telemetry_->spans() : nullptr,
                       "repl.apply", /*epoch=*/0);
  auto next = apply_frame(frame, current_);
  span.set_epoch(next->epoch());
  // Count the frame BEFORE publishing: wait_for_epoch() wakes on the
  // store's epoch, so the stats a waiter reads afterwards must already
  // include the frame that advanced it.
  bytes_received_.fetch_add(kFrameHeaderSize + frame.payload.size(),
                            std::memory_order_relaxed);
  if (frame.type == FrameType::Full) {
    fulls_applied_.fetch_add(1, std::memory_order_relaxed);
  } else {
    deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  }
  frames_applied_.fetch_add(1, std::memory_order_relaxed);
  // Publish BEFORE updating current_: if the store rejects the epoch
  // (it never should — the publisher only moves forward), the replica's
  // frame chain stays consistent with what readers can see.
  store_.publish(next);
  current_ = std::move(next);
  return true;
}

std::size_t Replica::run() {
  std::size_t applied = 0;
  try {
    while (!stopping_.load(std::memory_order_acquire) && apply_next()) {
      ++applied;
    }
  } catch (const Error& e) {
    if (!stopping_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      error_ = e.what();
    }
    // When stop() shut the socket down under us the failure is the
    // expected wakeup, not an error worth recording.
  }
  return applied;
}

void Replica::start() {
  thread_ = std::thread([this] { (void)run(); });
}

void Replica::stop() {
  stopping_.store(true, std::memory_order_release);
  conn_.shutdown();
  if (thread_.joinable()) thread_.join();
}

bool Replica::wait_for_epoch(std::uint64_t epoch,
                             std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (store_.epoch() < epoch) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

ReplicaStats Replica::stats() const {
  ReplicaStats s;
  s.frames_applied = frames_applied_.load(std::memory_order_relaxed);
  s.fulls_applied = fulls_applied_.load(std::memory_order_relaxed);
  s.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.epoch = store_.epoch();
  return s;
}

std::string Replica::error() const {
  std::lock_guard<std::mutex> lock(error_mutex_);
  return error_;
}

void Replica::attach_telemetry(std::shared_ptr<obs::Registry> registry) {
  telemetry_sampler_.reset();
  telemetry_ = std::move(registry);
  if (telemetry_ == nullptr) return;
  // Raw pointer: the registry must not own (via the closure) a share of
  // itself. telemetry_ keeps it alive; the handle unregisters first.
  obs::Registry* reg = telemetry_.get();
  telemetry_sampler_ = reg->add_sampler([this, reg] {
    const ReplicaStats s = stats();
    const auto g = [reg](const char* name, std::uint64_t v) {
      reg->gauge(name).set(static_cast<std::int64_t>(v));
    };
    g("repl.rep.frames_applied", s.frames_applied);
    g("repl.rep.fulls_applied", s.fulls_applied);
    g("repl.rep.deltas_applied", s.deltas_applied);
    g("repl.rep.bytes_received", s.bytes_received);
    g("repl.rep.epoch", s.epoch);
  });
}

}  // namespace navsep::repl

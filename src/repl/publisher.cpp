#include "repl/publisher.hpp"

#include <chrono>
#include <utility>

namespace navsep::repl {

Publisher::Publisher(const serve::SnapshotStore& store, Listener listener,
                     PublisherOptions options)
    : store_(&store),
      listener_(std::move(listener)),
      endpoint_(listener_.endpoint()),
      options_(std::move(options)) {
  if (options_.telemetry != nullptr) {
    // Raw pointer: a shared_ptr capture would let the registry own a
    // closure owning the registry. options_ keeps the shared_ptr alive
    // for the publisher's lifetime; the handle unregisters first.
    obs::Registry* reg = options_.telemetry.get();
    telemetry_sampler_ = reg->add_sampler([this, reg] {
      const Stats s = stats();
      const auto g = [reg](const char* name, std::uint64_t v) {
        reg->gauge(name).set(static_cast<std::int64_t>(v));
      };
      g("repl.pub.subscribers_accepted", s.subscribers_accepted);
      g("repl.pub.subscribers_active", s.subscribers_active);
      g("repl.pub.full_frames", s.full_frames);
      g("repl.pub.delta_frames", s.delta_frames);
      g("repl.pub.resync_fulls", s.resync_fulls);
      g("repl.pub.full_bytes", s.full_bytes);
      g("repl.pub.delta_bytes", s.delta_bytes);
    });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Publisher::~Publisher() { stop(); }

void Publisher::stop() {
  if (stopping_.exchange(true)) {
    // Second caller still has to wait for the joins below, but they are
    // only performed once (threads become unjoinable after the first).
  }
  // The accept loop polls with accept_timeout_ms and rechecks the stop
  // flag each round, so it exits on its own within one timeout. Join it
  // BEFORE touching the listener: close() writes the fd the accept
  // thread is still reading.
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  std::vector<std::unique_ptr<Subscriber>> drained;
  {
    std::lock_guard<std::mutex> lock(subscribers_mutex_);
    drained.swap(subscribers_);
  }
  for (auto& subscriber : drained) {
    subscriber->conn.shutdown();
    if (subscriber->thread.joinable()) subscriber->thread.join();
  }
}

Publisher::Stats Publisher::stats() const {
  Stats s;
  s.subscribers_accepted = accepted_.load(std::memory_order_relaxed);
  s.full_frames = full_frames_.load(std::memory_order_relaxed);
  s.delta_frames = delta_frames_.load(std::memory_order_relaxed);
  s.resync_fulls = resync_fulls_.load(std::memory_order_relaxed);
  s.full_bytes = full_bytes_.load(std::memory_order_relaxed);
  s.delta_bytes = delta_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(subscribers_mutex_);
  for (const auto& subscriber : subscribers_) {
    if (!subscriber->done.load(std::memory_order_acquire)) {
      ++s.subscribers_active;
    }
  }
  return s;
}

void Publisher::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::optional<Connection> conn;
    try {
      conn = listener_.accept(options_.accept_timeout_ms);
    } catch (const TransportError&) {
      break;  // listener torn down under us — stop() is in progress
    }
    if (!conn) continue;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto subscriber = std::make_unique<Subscriber>();
    subscriber->conn = std::move(*conn);
    Subscriber* raw = subscriber.get();
    {
      std::lock_guard<std::mutex> lock(subscribers_mutex_);
      // Reap subscribers whose stream already ended so a long-lived
      // publisher does not accumulate dead threads.
      for (auto it = subscribers_.begin(); it != subscribers_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = subscribers_.erase(it);
        } else {
          ++it;
        }
      }
      subscribers_.push_back(std::move(subscriber));
    }
    raw->thread = std::thread([this, raw] { stream_to(*raw); });
  }
}

void Publisher::stream_to(Subscriber& subscriber) {
  const auto poll_interval =
      std::chrono::milliseconds(options_.poll_interval_ms);
  std::shared_ptr<const serve::SiteSnapshot> last_sent;
  try {
    while (!stopping_.load(std::memory_order_acquire)) {
      auto current = store_->current();
      if (!current ||
          (last_sent && current->epoch() == last_sent->epoch())) {
        std::this_thread::sleep_for(poll_interval);
        continue;
      }
      obs::SpanLog* spans = options_.telemetry != nullptr
                                ? &options_.telemetry->spans()
                                : nullptr;
      std::string frame_bytes;
      {
        obs::ScopedSpan span(spans, "repl.encode", current->epoch());
        if (!last_sent) {
          // Mid-stream connect: the subscriber starts from a FULL frame.
          frame_bytes = encode_frame(FrameType::Full, encode_full(*current));
          full_frames_.fetch_add(1, std::memory_order_relaxed);
          full_bytes_.fetch_add(frame_bytes.size(),
                                std::memory_order_relaxed);
        } else if (current->epoch() - last_sent->epoch() >
                   options_.max_delta_gap) {
          // Resync-on-gap: a delta chain this long would outweigh the
          // site; start the subscriber over from the current epoch.
          frame_bytes = encode_frame(FrameType::Full, encode_full(*current));
          full_frames_.fetch_add(1, std::memory_order_relaxed);
          resync_fulls_.fetch_add(1, std::memory_order_relaxed);
          full_bytes_.fetch_add(frame_bytes.size(),
                                std::memory_order_relaxed);
        } else {
          frame_bytes = encode_frame(FrameType::Delta,
                                     encode_delta(*last_sent, *current));
          delta_frames_.fetch_add(1, std::memory_order_relaxed);
          delta_bytes_.fetch_add(frame_bytes.size(),
                                 std::memory_order_relaxed);
        }
      }
      {
        obs::ScopedSpan span(spans, "repl.ship", current->epoch());
        subscriber.conn.write_frame(frame_bytes);
      }
      last_sent = std::move(current);
    }
  } catch (const TransportError&) {
    // Subscriber hung up (or stop() shut the socket down) — this
    // stream is over; other subscribers are unaffected.
  }
  subscriber.done.store(true, std::memory_order_release);
}

}  // namespace navsep::repl

#include "xslt/xslt.hpp"

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace navsep::xslt {

namespace {

bool is_xsl(const xml::Element& e) { return e.name().ns_uri == kNamespace; }

bool is_xsl(const xml::Element& e, std::string_view local) {
  return is_xsl(e) && e.name().local == local;
}

/// Default priority per XSLT 1.0 §5.5 (simplified to our pattern subset):
/// bare name → 0, `*` → -0.5, text()/node() → -0.5, anything with more
/// structure (slashes, predicates) → 0.5.
double default_priority(std::string_view pattern) {
  if (pattern.find('/') != std::string_view::npos ||
      pattern.find('[') != std::string_view::npos) {
    return 0.5;
  }
  if (pattern == "*" || pattern == "text()" || pattern == "node()") {
    return -0.5;
  }
  return 0;
}

/// Expand a match pattern into an absolute XPath whose result set contains
/// exactly the nodes matching the pattern. "painting" matches any painting
/// element anywhere, i.e. //painting; "/" matches the root.
std::string pattern_to_xpath(std::string_view pattern) {
  std::string p(strings::trim(pattern));
  if (p == "/") return "/";
  if (p.rfind('/', 0) == 0) return p;  // already absolute (covers // too)
  return "//" + p;
}

}  // namespace

Stylesheet Stylesheet::compile(const xml::Document& doc) {
  Stylesheet out;
  out.owned_ = std::shared_ptr<const xml::Document>(doc.clone().release());
  const xml::Element* root = out.owned_->root();
  if (root == nullptr || !is_xsl(*root, "stylesheet")) {
    throw SemanticError("not an xsl:stylesheet document");
  }
  for (const xml::Element* child : root->child_elements()) {
    if (!is_xsl(*child, "template")) {
      if (is_xsl(*child)) continue;  // xsl:output etc. are ignored
      throw SemanticError("unexpected top-level element '" +
                          child->name().qualified() + "' in stylesheet");
    }
    Template t;
    t.match = child->attribute_or("match", "");
    t.name = child->attribute_or("name", "");
    if (t.match.empty() && t.name.empty()) {
      throw SemanticError("xsl:template needs a match or name attribute");
    }
    if (auto p = child->attribute("priority")) {
      t.priority = xpath::string_to_number(*p);
    } else {
      t.priority = default_priority(t.match);
    }
    t.body = child;
    t.order = out.templates_.size();
    out.templates_.push_back(std::move(t));
  }
  return out;
}

Stylesheet Stylesheet::compile_text(std::string_view text) {
  auto doc = xml::parse(text);
  return compile(*doc);
}

/// One transformation run: holds the input document, the match caches and
/// the output under construction.
class TransformRun {
 public:
  TransformRun(const Stylesheet& sheet, const xml::Document& input,
               const xpath::Environment& env)
      : sheet_(sheet), input_(input), env_(env) {}

  std::unique_ptr<xml::Document> run() {
    auto out = std::make_unique<xml::Document>();
    auto holder = std::make_unique<xml::Element>(xml::QName("result"));
    apply_templates({&input_}, *holder);
    // Unwrap: the first element child becomes the document element; any
    // top-level text is dropped (documents cannot hold bare text).
    for (auto& child : holder->children()) {
      if (child->is_element()) {
        out->set_root(
            std::unique_ptr<xml::Element>(child->as_element()->clone()));
        break;
      }
    }
    return out;
  }

 private:
  // --- template selection ---------------------------------------------------

  /// Nodes matching `pattern` in the input document (cached per pattern).
  const std::set<const xml::Node*>& matches_of(const std::string& pattern) {
    auto it = match_cache_.find(pattern);
    if (it != match_cache_.end()) return it->second;
    std::set<const xml::Node*> hits;
    try {
      xpath::NodeSet ns =
          xpath::select(pattern_to_xpath(pattern), input_, env_);
      hits.insert(ns.begin(), ns.end());
      if (pattern == "/") hits.insert(&input_);
    } catch (const Error&) {
      // An unmatchable pattern matches nothing.
    }
    return match_cache_.emplace(pattern, std::move(hits)).first->second;
  }

  const Stylesheet::Template* best_template(const xml::Node& node) {
    const Stylesheet::Template* best = nullptr;
    for (const auto& t : sheet_.templates_) {
      if (t.match.empty()) continue;
      if (!matches_of(t.match).contains(&node)) continue;
      if (best == nullptr || t.priority > best->priority ||
          (t.priority == best->priority && t.order > best->order)) {
        best = &t;
      }
    }
    return best;
  }

  // --- instruction execution ------------------------------------------------

  void apply_templates(const xpath::NodeSet& nodes, xml::Element& out) {
    const std::size_t size = nodes.size();
    for (std::size_t i = 0; i < size; ++i) {
      const Stylesheet::Template* t = best_template(*nodes[i]);
      if (t != nullptr) {
        instantiate(*t->body, *nodes[i], i + 1, size, out);
      } else {
        builtin_rule(*nodes[i], out);
      }
    }
  }

  /// XSLT built-in rules: recurse into children for roots/elements, copy
  /// text through, drop comments/PIs/attributes.
  void builtin_rule(const xml::Node& node, xml::Element& out) {
    switch (node.type()) {
      case xml::NodeType::Document:
      case xml::NodeType::Element: {
        xpath::NodeSet kids;
        const auto& children =
            node.type() == xml::NodeType::Document
                ? static_cast<const xml::Document&>(node).children()
                : static_cast<const xml::Element&>(node).children();
        for (const auto& c : children) kids.push_back(c.get());
        apply_templates(kids, out);
        break;
      }
      case xml::NodeType::Text:
        out.append_text(static_cast<const xml::Text&>(node).data());
        break;
      default:
        break;
    }
  }

  /// Execute the children of `body` with `node` as the current node.
  void instantiate(const xml::Element& body, const xml::Node& node,
                   std::size_t position, std::size_t size,
                   xml::Element& out) {
    for (const auto& child : body.children()) {
      if (child->is_text()) {
        out.append_text(static_cast<const xml::Text&>(*child).data());
        continue;
      }
      const xml::Element* e = child->as_element();
      if (e == nullptr) continue;  // comments/PIs in templates are dropped
      if (is_xsl(*e)) {
        execute_instruction(*e, node, position, size, out);
      } else {
        literal_element(*e, node, position, size, out);
      }
    }
  }

  void execute_instruction(const xml::Element& e, const xml::Node& node,
                           std::size_t position, std::size_t size,
                           xml::Element& out) {
    const std::string& op = e.name().local;
    if (op == "apply-templates") {
      std::string select = e.attribute_or("select", "child::node()");
      apply_templates(eval_nodes(select, node, position, size), out);
      return;
    }
    if (op == "value-of") {
      out.append_text(
          eval(require_attr(e, "select"), node, position, size).to_string());
      return;
    }
    if (op == "for-each") {
      xpath::NodeSet selected =
          eval_nodes(require_attr(e, "select"), node, position, size);
      for (std::size_t i = 0; i < selected.size(); ++i) {
        instantiate(e, *selected[i], i + 1, selected.size(), out);
      }
      return;
    }
    if (op == "if") {
      if (eval(require_attr(e, "test"), node, position, size).to_boolean()) {
        instantiate(e, node, position, size, out);
      }
      return;
    }
    if (op == "choose") {
      for (const xml::Element* branch : e.child_elements()) {
        if (is_xsl(*branch, "when")) {
          if (eval(require_attr(*branch, "test"), node, position, size)
                  .to_boolean()) {
            instantiate(*branch, node, position, size, out);
            return;
          }
        } else if (is_xsl(*branch, "otherwise")) {
          instantiate(*branch, node, position, size, out);
          return;
        }
      }
      return;
    }
    if (op == "text") {
      out.append_text(e.own_text());
      return;
    }
    if (op == "element") {
      std::string name = avt(require_attr(e, "name"), node, position, size);
      xml::Element& created = out.append_element(xml::QName(name));
      instantiate(e, node, position, size, created);
      return;
    }
    if (op == "attribute") {
      std::string name = avt(require_attr(e, "name"), node, position, size);
      // Value = instantiated content, flattened to text.
      xml::Element scratch{xml::QName("scratch")};
      instantiate(e, node, position, size, scratch);
      out.set_attribute(name, scratch.string_value());
      return;
    }
    if (op == "copy-of") {
      xpath::Value v =
          eval(require_attr(e, "select"), node, position, size);
      if (v.is_node_set()) {
        for (const xml::Node* n : v.node_set()) copy_node(*n, out);
      } else {
        out.append_text(v.to_string());
      }
      return;
    }
    if (op == "call-template") {
      std::string name = require_attr(e, "name");
      for (const auto& t : sheet_.templates_) {
        if (t.name == name) {
          instantiate(*t.body, node, position, size, out);
          return;
        }
      }
      throw SemanticError("xsl:call-template: no template named '" + name +
                          "'");
    }
    if (op == "comment" || op == "message") return;  // benign no-ops
    throw SemanticError("unsupported XSLT instruction xsl:" + op);
  }

  void literal_element(const xml::Element& e, const xml::Node& node,
                       std::size_t position, std::size_t size,
                       xml::Element& out) {
    xml::Element& created = out.append_element(e.name());
    for (const auto& a : e.attributes()) {
      if (a.is_namespace_decl()) continue;
      created.set_attribute_ns(a.name, avt(a.value, node, position, size));
    }
    instantiate(e, node, position, size, created);
  }

  static void copy_node(const xml::Node& n, xml::Element& out) {
    switch (n.type()) {
      case xml::NodeType::Element:
        out.append(static_cast<const xml::Element&>(n).clone());
        break;
      case xml::NodeType::Text:
        out.append_text(static_cast<const xml::Text&>(n).data());
        break;
      case xml::NodeType::Attribute: {
        const auto& a = static_cast<const xml::AttrNode&>(n);
        out.set_attribute_ns(a.name(), a.value());
        break;
      }
      default:
        break;
    }
  }

  // --- expression helpers ------------------------------------------------------

  xpath::Value eval(std::string_view expr, const xml::Node& node,
                    std::size_t position, std::size_t size) {
    xpath::EvalContext ctx;
    ctx.node = &node;
    ctx.position = position;
    ctx.size = size;
    ctx.env = &env_;
    return xpath::evaluate(*parsed(expr), ctx);
  }

  xpath::NodeSet eval_nodes(std::string_view expr, const xml::Node& node,
                            std::size_t position, std::size_t size) {
    return eval(expr, node, position, size).node_set();
  }

  /// Attribute value template: {expr} substitution, {{ and }} escapes.
  std::string avt(std::string_view text, const xml::Node& node,
                  std::size_t position, std::size_t size) {
    std::string out;
    for (std::size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '{') {
        if (i + 1 < text.size() && text[i + 1] == '{') {
          out.push_back('{');
          ++i;
          continue;
        }
        std::size_t close = text.find('}', i);
        if (close == std::string_view::npos) {
          throw SemanticError("unterminated '{' in attribute value template");
        }
        out += eval(text.substr(i + 1, close - i - 1), node, position, size)
                   .to_string();
        i = close;
        continue;
      }
      if (c == '}' && i + 1 < text.size() && text[i + 1] == '}') {
        out.push_back('}');
        ++i;
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  const xpath::Expr* parsed(std::string_view expr) {
    auto it = expr_cache_.find(std::string(expr));
    if (it != expr_cache_.end()) return it->second.get();
    auto parsed_expr = xpath::parse_expression(expr);
    return expr_cache_.emplace(std::string(expr), std::move(parsed_expr))
        .first->second.get();
  }

  static std::string require_attr(const xml::Element& e,
                                  std::string_view name) {
    auto v = e.attribute(name);
    if (!v.has_value()) {
      throw SemanticError("xsl:" + e.name().local + " requires a '" +
                          std::string(name) + "' attribute");
    }
    return std::string(*v);
  }

  const Stylesheet& sheet_;
  const xml::Document& input_;
  const xpath::Environment& env_;
  std::map<std::string, std::set<const xml::Node*>> match_cache_;
  std::map<std::string, xpath::ExprPtr> expr_cache_;
};

std::unique_ptr<xml::Document> Stylesheet::transform(
    const xml::Document& input, const xpath::Environment& env) const {
  TransformRun run(*this, input, env);
  return run.run();
}

}  // namespace navsep::xslt

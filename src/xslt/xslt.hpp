// An XSL-T subset: template-driven transformation of data XML into
// presentation markup (the paper's XSL half of the data/presentation
// split; the museum pipeline uses it to turn painting documents into HTML
// before the navigation aspect is woven in).
//
// Supported instruction set:
//   xsl:template (match/name/priority), xsl:apply-templates (select),
//   xsl:call-template, xsl:value-of, xsl:for-each, xsl:if,
//   xsl:choose/when/otherwise, xsl:text, xsl:element, xsl:attribute,
//   xsl:copy-of, literal result elements, and {xpath} attribute value
//   templates.
//
// Match patterns are the XSLT 1.0 pattern subset expressible as location
// paths (names, *, text(), predicates, / and //). Template conflict
// resolution follows priority then document order; the XSLT built-in
// rules (walk children, copy text) apply when nothing matches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xml/dom.hpp"
#include "xpath/eval.hpp"

namespace navsep::xslt {

/// The XSLT namespace URI.
inline constexpr std::string_view kNamespace =
    "http://www.w3.org/1999/XSL/Transform";

class Stylesheet {
 public:
  /// Compile from a parsed <xsl:stylesheet> document.
  /// Throws navsep::SemanticError for unknown instructions or missing
  /// required attributes.
  [[nodiscard]] static Stylesheet compile(const xml::Document& doc);

  /// Convenience: parse then compile.
  [[nodiscard]] static Stylesheet compile_text(std::string_view text);

  /// Transform an input document. Extension functions/variables may be
  /// provided through `env` (the transformer adds nothing to it).
  [[nodiscard]] std::unique_ptr<xml::Document> transform(
      const xml::Document& input, const xpath::Environment& env = {}) const;

  [[nodiscard]] std::size_t template_count() const noexcept {
    return templates_.size();
  }

 private:
  struct Template {
    std::string match;    // pattern text ("" for named-only templates)
    std::string name;     // xsl:call-template target ("" if none)
    double priority = 0;  // explicit or derived default
    const xml::Element* body = nullptr;  // children are the instructions
    std::size_t order = 0;
  };

  friend class TransformRun;
  // Keeps the compiled stylesheet document alive (templates point into it).
  std::shared_ptr<const xml::Document> owned_;
  std::vector<Template> templates_;
};

}  // namespace navsep::xslt

#include "xlink/traversal.hpp"

#include <set>

#include "uri/uri.hpp"
#include "xlink/processor.hpp"
#include "xpointer/xpointer.hpp"

namespace navsep::xlink {

namespace {

/// Every endpoint of the link, locators first (document order within kind).
std::vector<Endpoint> all_endpoints(const ExtendedLink& link,
                                    std::string_view base_uri) {
  std::vector<Endpoint> out;
  for (const auto& l : link.locators) {
    Endpoint e;
    e.is_local = false;
    e.element = l.element;
    e.uri = l.href.empty()
                ? std::string()
                : uri::resolve(std::string(base_uri), l.href);
    e.label = l.label;
    e.role = l.role;
    e.title = l.title;
    out.push_back(std::move(e));
  }
  for (const auto& r : link.resources) {
    Endpoint e;
    e.is_local = true;
    e.element = r.element;
    e.label = r.label;
    e.role = r.role;
    e.title = r.title;
    out.push_back(std::move(e));
  }
  return out;
}

/// Endpoints bucketed by label, each bucket in document order. An absent
/// from/to names every endpoint (XLink 1.0 §5.1.3), served by the `all`
/// list. Built once per link so expansion is O(arcs + endpoints + output)
/// instead of re-scanning every endpoint per arc (which made large
/// linkbases quadratic to expand).
struct LabelIndex {
  std::map<std::string_view, std::vector<const Endpoint*>, std::less<>>
      by_label;
  std::vector<const Endpoint*> all;

  explicit LabelIndex(const std::vector<Endpoint>& eps) {
    all.reserve(eps.size());
    for (const auto& e : eps) {
      all.push_back(&e);
      by_label[e.label].push_back(&e);
    }
  }

  [[nodiscard]] const std::vector<const Endpoint*>& with_label(
      std::string_view label) const {
    if (label.empty()) return all;
    static const std::vector<const Endpoint*> kEmpty;
    auto it = by_label.find(label);
    return it == by_label.end() ? kEmpty : it->second;
  }
};

}  // namespace

std::vector<Arc> expand_arcs(const ExtendedLink& link,
                             std::string_view base_uri) {
  std::vector<Arc> out;
  std::vector<Endpoint> eps = all_endpoints(link, base_uri);
  const LabelIndex index(eps);
  for (const auto& spec : link.arcs) {
    const std::vector<const Endpoint*>& froms = index.with_label(spec.from);
    const std::vector<const Endpoint*>& tos = index.with_label(spec.to);
    for (const Endpoint* f : froms) {
      for (const Endpoint* t : tos) {
        if (f == t) continue;  // an arc from a resource to itself is inert
        Arc a;
        a.from = *f;
        a.to = *t;
        a.arcrole = spec.arcrole;
        a.title = spec.title;
        a.show = spec.show;
        a.actuate = spec.actuate;
        a.origin = spec.element;
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

std::vector<Arc> expand_arcs(const LinkCollection& links,
                             std::string_view base_uri) {
  std::vector<Arc> out;
  for (const auto& s : links.simple) {
    if (s.href.empty()) continue;
    Arc a;
    a.from.is_local = true;
    a.from.element = s.element;
    a.from.uri = std::string(base_uri);
    a.to.is_local = false;
    a.to.uri = uri::resolve(std::string(base_uri), s.href);
    a.to.role = s.role;
    a.to.title = s.title;
    a.arcrole = s.arcrole;
    a.title = s.title;
    a.show = s.show;
    a.actuate = s.actuate;
    a.origin = s.element;
    out.push_back(std::move(a));
  }
  for (const auto& x : links.extended) {
    std::vector<Arc> expanded = expand_arcs(x, base_uri);
    out.insert(out.end(), std::make_move_iterator(expanded.begin()),
               std::make_move_iterator(expanded.end()));
  }
  return out;
}

// --- DocumentRegistry --------------------------------------------------------

std::string normalize_document_uri(std::string_view u) {
  uri::Uri parsed = uri::parse(u);
  parsed.fragment.reset();
  return uri::normalize(parsed).to_string();
}

std::string normalize_ref(std::string_view u) {
  return uri::normalize(uri::parse(u)).to_string();
}

void DocumentRegistry::add(const xml::Document& doc) {
  add(doc.base_uri(), doc);
}

void DocumentRegistry::add(std::string_view u, const xml::Document& doc) {
  docs_[normalize_document_uri(u)] = &doc;
}

const xml::Document* DocumentRegistry::find(std::string_view u) const {
  auto it = docs_.find(normalize_document_uri(u));
  return it == docs_.end() ? nullptr : it->second;
}

const xml::Element* DocumentRegistry::resolve(std::string_view u) const {
  const xml::Document* doc = find(u);
  if (doc == nullptr) return nullptr;
  uri::Uri parsed = uri::parse(u);
  if (!parsed.fragment || parsed.fragment->empty()) {
    return doc->root();
  }
  return xpointer::resolve_element(*parsed.fragment, *doc);
}

// --- TraversalGraph ----------------------------------------------------------

TraversalGraph::TraversalGraph(std::vector<Arc> arcs)
    : arcs_(std::move(arcs)) {
  for (std::size_t i = 0; i < arcs_.size(); ++i) index_arc(i);
}

void TraversalGraph::index_arc(std::size_t i) {
  const Arc& a = arcs_[i];
  if (!a.from.uri.empty()) {
    by_from_[normalize_ref(a.from.uri)].push_back(i);
  }
  if (!a.to.uri.empty()) {
    by_to_[normalize_ref(a.to.uri)].push_back(i);
  }
}

TraversalGraph TraversalGraph::from_linkbase(const xml::Document& doc) {
  LinkCollection links = extract(doc);
  return TraversalGraph(expand_arcs(links, doc.base_uri()));
}

std::vector<const Arc*> TraversalGraph::outgoing(std::string_view u) const {
  const std::vector<std::size_t>* indices = outgoing_indices(normalize_ref(u));
  if (indices == nullptr) return {};
  std::vector<const Arc*> out;
  out.reserve(indices->size());
  for (std::size_t i : *indices) out.push_back(&arcs_[i]);
  return out;
}

std::vector<const Arc*> TraversalGraph::incoming(std::string_view u) const {
  auto it = by_to_.find(normalize_ref(u));
  if (it == by_to_.end()) return {};
  std::vector<const Arc*> out;
  out.reserve(it->second.size());
  for (std::size_t i : it->second) out.push_back(&arcs_[i]);
  return out;
}

const std::vector<std::size_t>* TraversalGraph::outgoing_indices(
    std::string_view normalized_uri) const {
  auto it = by_from_.find(normalized_uri);
  return it == by_from_.end() ? nullptr : &it->second;
}

std::vector<std::string> TraversalGraph::resource_uris() const {
  std::set<std::string> seen;
  for (const auto& a : arcs_) {
    if (!a.from.uri.empty()) seen.insert(normalize_ref(a.from.uri));
    if (!a.to.uri.empty()) seen.insert(normalize_ref(a.to.uri));
  }
  return {seen.begin(), seen.end()};
}

std::vector<const Arc*> TraversalGraph::outgoing_with_role(
    std::string_view u, std::string_view arcrole) const {
  const std::vector<std::size_t>* indices = outgoing_indices(normalize_ref(u));
  if (indices == nullptr) return {};
  std::vector<const Arc*> out;
  for (std::size_t i : *indices) {
    if (arcs_[i].arcrole == arcrole) out.push_back(&arcs_[i]);
  }
  return out;
}

void TraversalGraph::merge(TraversalGraph other) {
  const std::size_t offset = arcs_.size();
  arcs_.insert(arcs_.end(), std::make_move_iterator(other.arcs_.begin()),
               std::make_move_iterator(other.arcs_.end()));
  for (std::size_t i = offset; i < arcs_.size(); ++i) index_arc(i);
}

// --- linkbase discovery --------------------------------------------------------

std::vector<std::string> find_linkbase_references(const xml::Document& doc) {
  std::vector<std::string> out;
  LinkCollection links = extract(doc);
  auto add = [&](std::string_view href) {
    if (href.empty()) return;
    out.push_back(uri::resolve(doc.base_uri(), href));
  };
  for (const auto& s : links.simple) {
    if (s.arcrole == kLinkbaseArcrole) add(s.href);
  }
  for (const auto& x : links.extended) {
    for (const auto& arc_spec : x.arcs) {
      if (arc_spec.arcrole != kLinkbaseArcrole) continue;
      // The to-side locators carry the linkbase URIs.
      for (const auto& loc : x.locators) {
        if (arc_spec.to.empty() || loc.label == arc_spec.to) add(loc.href);
      }
    }
  }
  return out;
}

TraversalGraph load_with_linkbases(
    const xml::Document& doc,
    const std::function<const xml::Document*(std::string_view uri)>& fetch) {
  TraversalGraph graph = TraversalGraph::from_linkbase(doc);
  std::set<std::string> loaded;
  loaded.insert(normalize_document_uri(doc.base_uri()));

  std::vector<const xml::Document*> frontier{&doc};
  while (!frontier.empty()) {
    const xml::Document* current = frontier.back();
    frontier.pop_back();
    for (const std::string& ref : find_linkbase_references(*current)) {
      std::string key = normalize_document_uri(ref);
      if (!loaded.insert(std::move(key)).second) continue;
      const xml::Document* next = fetch ? fetch(ref) : nullptr;
      if (next == nullptr) continue;
      graph.merge(TraversalGraph::from_linkbase(*next));
      frontier.push_back(next);
    }
  }
  return graph;
}

bool arcrole_matches(std::string_view arcrole, std::string_view role) {
  if (arcrole == role) return true;
  constexpr std::string_view kPrefix = "nav:";
  return arcrole.size() == kPrefix.size() + role.size() &&
         arcrole.substr(0, kPrefix.size()) == kPrefix &&
         arcrole.substr(kPrefix.size()) == role;
}

bool is_traversable(const Arc& arc) noexcept {
  return arc.show != Show::None && arc.actuate != Actuate::None;
}

}  // namespace navsep::xlink

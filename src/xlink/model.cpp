#include "xlink/model.hpp"

namespace navsep::xlink {

LinkType link_type_from(std::string_view v) noexcept {
  if (v == "simple") return LinkType::Simple;
  if (v == "extended") return LinkType::Extended;
  if (v == "locator") return LinkType::Locator;
  if (v == "arc") return LinkType::Arc;
  if (v == "resource") return LinkType::Resource;
  if (v == "title") return LinkType::Title;
  return LinkType::None;
}

Show show_from(std::string_view v) noexcept {
  if (v == "new") return Show::New;
  if (v == "replace") return Show::Replace;
  if (v == "embed") return Show::Embed;
  if (v == "other") return Show::Other;
  if (v == "none") return Show::None;
  return Show::Unspecified;
}

Actuate actuate_from(std::string_view v) noexcept {
  if (v == "onLoad") return Actuate::OnLoad;
  if (v == "onRequest") return Actuate::OnRequest;
  if (v == "other") return Actuate::Other;
  if (v == "none") return Actuate::None;
  return Actuate::Unspecified;
}

std::string_view to_string(LinkType t) noexcept {
  switch (t) {
    case LinkType::None: return "none";
    case LinkType::Simple: return "simple";
    case LinkType::Extended: return "extended";
    case LinkType::Locator: return "locator";
    case LinkType::Arc: return "arc";
    case LinkType::Resource: return "resource";
    case LinkType::Title: return "title";
  }
  return "?";
}

std::string_view to_string(Show s) noexcept {
  switch (s) {
    case Show::Unspecified: return "";
    case Show::New: return "new";
    case Show::Replace: return "replace";
    case Show::Embed: return "embed";
    case Show::Other: return "other";
    case Show::None: return "none";
  }
  return "?";
}

std::string_view to_string(Actuate a) noexcept {
  switch (a) {
    case Actuate::Unspecified: return "";
    case Actuate::OnLoad: return "onLoad";
    case Actuate::OnRequest: return "onRequest";
    case Actuate::Other: return "other";
    case Actuate::None: return "none";
  }
  return "?";
}

std::vector<const xml::Element*> ExtendedLink::endpoints_with_label(
    std::string_view label) const {
  std::vector<const xml::Element*> out;
  for (const auto& l : locators) {
    if (l.label == label) out.push_back(l.element);
  }
  for (const auto& r : resources) {
    if (r.label == label) out.push_back(r.element);
  }
  return out;
}

}  // namespace navsep::xlink

// The XLink processor: recognizes linking elements in a parsed document and
// checks the constraints of the XLink 1.0 recommendation.
#pragma once

#include <vector>

#include "xlink/model.hpp"

namespace navsep::xlink {

/// Scan a document for XLink markup. Nested extended links are not
/// recognized inside each other (per spec, extended links do not nest);
/// issues encountered during extraction are appended to `issues` when the
/// pointer is non-null.
[[nodiscard]] LinkCollection extract(const xml::Document& doc,
                                     std::vector<Issue>* issues = nullptr);

/// Validate a collection against the recommendation's constraints:
/// locators need hrefs, arcs should reference labels that exist, simple
/// links without hrefs are untraversable, and so on.
[[nodiscard]] std::vector<Issue> validate(const LinkCollection& links);

}  // namespace navsep::xlink

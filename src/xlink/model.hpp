// The XLink 1.0 data model: what an XLink processor recognizes in markup.
//
// XLink is attribute-based: any element becomes a linking element by
// carrying attributes from the http://www.w3.org/1999/xlink namespace.
// The paper's links.xml is an extended link whose locators point into the
// data documents (picasso.xml, avignon.xml) and whose arcs encode the
// access structure (Index, Guided Tour, ...). Keeping those arcs in one
// file *is* the separation of the navigational concern.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace navsep::xlink {

/// The XLink namespace URI.
inline constexpr std::string_view kNamespace = "http://www.w3.org/1999/xlink";

/// xlink:type values.
enum class LinkType {
  None,
  Simple,
  Extended,
  Locator,
  Arc,
  Resource,
  Title,
};

/// xlink:show — requested presentation of the traversal target.
enum class Show { Unspecified, New, Replace, Embed, Other, None };

/// xlink:actuate — when traversal fires.
enum class Actuate { Unspecified, OnLoad, OnRequest, Other, None };

[[nodiscard]] LinkType link_type_from(std::string_view v) noexcept;
[[nodiscard]] Show show_from(std::string_view v) noexcept;
[[nodiscard]] Actuate actuate_from(std::string_view v) noexcept;
[[nodiscard]] std::string_view to_string(LinkType t) noexcept;
[[nodiscard]] std::string_view to_string(Show s) noexcept;
[[nodiscard]] std::string_view to_string(Actuate a) noexcept;

/// A simple link: one element, one outbound arc to `href`.
struct SimpleLink {
  const xml::Element* element = nullptr;
  std::string href;
  std::string role;
  std::string arcrole;
  std::string title;
  Show show = Show::Unspecified;
  Actuate actuate = Actuate::Unspecified;
};

/// locator-type element inside an extended link (remote resource).
struct Locator {
  const xml::Element* element = nullptr;
  std::string href;
  std::string label;
  std::string role;
  std::string title;
};

/// resource-type element inside an extended link (local resource).
struct LocalResource {
  const xml::Element* element = nullptr;
  std::string label;
  std::string role;
  std::string title;
};

/// arc-type element: traversal rules between labeled endpoints.
struct ArcSpec {
  const xml::Element* element = nullptr;
  std::string from;  // empty = every labeled endpoint
  std::string to;    // empty = every labeled endpoint
  std::string arcrole;
  std::string title;
  Show show = Show::Unspecified;
  Actuate actuate = Actuate::Unspecified;
};

/// An extended link: labeled endpoints plus arcs between the labels.
struct ExtendedLink {
  const xml::Element* element = nullptr;
  std::string role;
  std::string title;
  std::vector<Locator> locators;
  std::vector<LocalResource> resources;
  std::vector<ArcSpec> arcs;

  /// All endpoints carrying `label`, locators first.
  [[nodiscard]] std::vector<const xml::Element*> endpoints_with_label(
      std::string_view label) const;
};

/// Every linking element found in one document.
struct LinkCollection {
  std::vector<SimpleLink> simple;
  std::vector<ExtendedLink> extended;

  [[nodiscard]] std::size_t total_links() const noexcept {
    return simple.size() + extended.size();
  }
};

/// A problem detected while processing XLink markup (the processor keeps
/// going and reports; only structurally fatal input throws).
struct Issue {
  enum class Severity { Warning, Error };
  Severity severity = Severity::Warning;
  std::string message;
  const xml::Element* element = nullptr;
};

}  // namespace navsep::xlink

// Arc expansion and the traversal graph.
//
// An XLink arc is declared between *labels*; traversal happens between
// *resources*. This module expands arcs to endpoint pairs (the cross
// product, per XLink 1.0 §5.1.3: an absent from/to stands for every
// labeled endpoint), resolves hrefs against the linkbase base URI, and
// materializes the result as a graph keyed by normalized URI so a browser
// can ask "which arcs leave the resource I am looking at?".
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "xlink/model.hpp"
#include "xml/dom.hpp"

namespace navsep::xlink {

/// One end of an expanded arc.
struct Endpoint {
  bool is_local = false;             // resource element inside the link itself
  const xml::Element* element = nullptr;  // the locator/resource element
  std::string uri;    // absolute URI incl. fragment ("" for local resources)
  std::string label;
  std::string role;
  std::string title;
};

/// A fully expanded arc: concrete endpoints plus traversal behavior.
struct Arc {
  Endpoint from;
  Endpoint to;
  std::string arcrole;
  std::string title;
  Show show = Show::Unspecified;
  Actuate actuate = Actuate::Unspecified;
  const xml::Element* origin = nullptr;  // the arc or simple-link element
};

/// Expand one extended link. `base_uri` is the URI of the document holding
/// the link (hrefs resolve against it).
[[nodiscard]] std::vector<Arc> expand_arcs(const ExtendedLink& link,
                                           std::string_view base_uri);

/// Expand everything in a collection (simple links yield one arc each,
/// from the document holding them to their href).
[[nodiscard]] std::vector<Arc> expand_arcs(const LinkCollection& links,
                                           std::string_view base_uri);

/// Known documents, keyed by normalized absolute URI (fragment stripped).
/// The registry does not own documents; callers keep them alive.
class DocumentRegistry {
 public:
  /// Register under the document's own base_uri().
  void add(const xml::Document& doc);
  void add(std::string_view uri, const xml::Document& doc);

  [[nodiscard]] const xml::Document* find(std::string_view uri) const;
  [[nodiscard]] std::size_t size() const noexcept { return docs_.size(); }

  /// Resolve a URI-with-optional-fragment to a concrete element:
  /// the fragment is an XPointer into the found document; no fragment
  /// means the document element. Returns nullptr when the document is
  /// unknown or the pointer selects nothing.
  [[nodiscard]] const xml::Element* resolve(std::string_view uri) const;

 private:
  std::map<std::string, const xml::Document*, std::less<>> docs_;
};

/// Strip the fragment and normalize (for registry keys).
[[nodiscard]] std::string normalize_document_uri(std::string_view uri);

/// Normalize a full URI reference including its fragment (for arc keys).
[[nodiscard]] std::string normalize_ref(std::string_view uri);

/// The traversal graph over a set of expanded arcs.
///
/// Lookups are served by a per-source index: each distinct normalized
/// endpoint URI maps to the (document-ordered) arc indices departing /
/// arriving there, so `outgoing()` is one map probe — no full-arc-list
/// scan and no per-call sort.
class TraversalGraph {
 public:
  TraversalGraph() = default;
  explicit TraversalGraph(std::vector<Arc> arcs);

  /// Convenience: extract + expand + build from a linkbase document.
  [[nodiscard]] static TraversalGraph from_linkbase(const xml::Document& doc);

  [[nodiscard]] const std::vector<Arc>& arcs() const noexcept { return arcs_; }

  /// Arcs departing the resource identified by `uri` (normalized before
  /// lookup). Order: linkbase document order.
  [[nodiscard]] std::vector<const Arc*> outgoing(std::string_view uri) const;

  /// Arcs arriving at `uri`.
  [[nodiscard]] std::vector<const Arc*> incoming(std::string_view uri) const;

  /// Arc indices departing the *already normalized* `uri` — the zero-copy
  /// fast path behind `outgoing()`, for callers that loop over one
  /// source: normalize once, hold the span. Null when none.
  [[nodiscard]] const std::vector<std::size_t>* outgoing_indices(
      std::string_view normalized_uri) const;

  /// Every distinct endpoint URI appearing in the graph, sorted.
  [[nodiscard]] std::vector<std::string> resource_uris() const;

  /// Arcs departing `uri` whose arcrole equals `arcrole`.
  [[nodiscard]] std::vector<const Arc*> outgoing_with_role(
      std::string_view uri, std::string_view arcrole) const;

  /// Merge another graph into this one (linkbase aggregation).
  void merge(TraversalGraph other);

 private:
  void index_arc(std::size_t i);

  std::vector<Arc> arcs_;
  // Per-source / per-target index: indices are inserted in increasing
  // order, so every bucket stays sorted in linkbase document order.
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_from_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_to_;
};

/// Does `arcrole` name the navigation role `role`, under the site
/// convention that roles may be written bare ("next") or prefixed
/// ("nav:next")? One definition shared by Browser and the serve-layer
/// snapshots so the two can never disagree on role lookup.
[[nodiscard]] bool arcrole_matches(std::string_view arcrole,
                                   std::string_view role);

/// May a consumer actuate this arc? show="none" / actuate="none" forbid
/// traversal (XLink 1.0 §5.6.1) — the one rule every arc follower
/// applies.
[[nodiscard]] bool is_traversable(const Arc& arc) noexcept;

/// The arcrole XLink 1.0 §5.1.2 reserves for "load this linkbase too".
inline constexpr std::string_view kLinkbaseArcrole =
    "http://www.w3.org/1999/xlink/properties/linkbase";

/// Linkbase discovery: URIs of external linkbases a document announces
/// through arcs with the reserved arcrole, resolved against the document's
/// base URI. Callers fetch those documents and merge their graphs.
[[nodiscard]] std::vector<std::string> find_linkbase_references(
    const xml::Document& doc);

/// Load a document's own arcs plus every announced linkbase reachable
/// through `fetch` (recursively, cycle-safe). `fetch` returns nullptr for
/// unavailable documents, which are skipped.
[[nodiscard]] TraversalGraph load_with_linkbases(
    const xml::Document& doc,
    const std::function<const xml::Document*(std::string_view uri)>& fetch);

}  // namespace navsep::xlink

#include "xlink/processor.hpp"

#include <set>

namespace navsep::xlink {

namespace {

std::string xattr(const xml::Element& e, std::string_view local) {
  return std::string(e.attribute_ns(kNamespace, local).value_or(""));
}

LinkType type_of(const xml::Element& e) {
  return link_type_from(xattr(e, "type"));
}

void note(std::vector<Issue>* issues, Issue::Severity sev, std::string msg,
          const xml::Element* where) {
  if (issues == nullptr) return;
  issues->push_back(Issue{sev, std::move(msg), where});
}

SimpleLink read_simple(const xml::Element& e) {
  SimpleLink s;
  s.element = &e;
  s.href = xattr(e, "href");
  s.role = xattr(e, "role");
  s.arcrole = xattr(e, "arcrole");
  s.title = xattr(e, "title");
  s.show = show_from(xattr(e, "show"));
  s.actuate = actuate_from(xattr(e, "actuate"));
  return s;
}

ExtendedLink read_extended(const xml::Element& e,
                           std::vector<Issue>* issues) {
  ExtendedLink x;
  x.element = &e;
  x.role = xattr(e, "role");
  x.title = xattr(e, "title");
  for (const xml::Element* child : e.child_elements()) {
    switch (type_of(*child)) {
      case LinkType::Locator: {
        Locator l;
        l.element = child;
        l.href = xattr(*child, "href");
        l.label = xattr(*child, "label");
        l.role = xattr(*child, "role");
        l.title = xattr(*child, "title");
        if (l.href.empty()) {
          note(issues, Issue::Severity::Error,
               "locator-type element lacks xlink:href", child);
        }
        x.locators.push_back(std::move(l));
        break;
      }
      case LinkType::Resource: {
        LocalResource r;
        r.element = child;
        r.label = xattr(*child, "label");
        r.role = xattr(*child, "role");
        r.title = xattr(*child, "title");
        x.resources.push_back(std::move(r));
        break;
      }
      case LinkType::Arc: {
        ArcSpec a;
        a.element = child;
        a.from = xattr(*child, "from");
        a.to = xattr(*child, "to");
        a.arcrole = xattr(*child, "arcrole");
        a.title = xattr(*child, "title");
        a.show = show_from(xattr(*child, "show"));
        a.actuate = actuate_from(xattr(*child, "actuate"));
        x.arcs.push_back(std::move(a));
        break;
      }
      case LinkType::Title:
        if (x.title.empty()) x.title = child->string_value();
        break;
      case LinkType::Extended:
        note(issues, Issue::Severity::Warning,
             "extended link nested inside an extended link is ignored",
             child);
        break;
      case LinkType::Simple:
        note(issues, Issue::Severity::Warning,
             "simple link inside an extended link is ignored as an endpoint",
             child);
        break;
      case LinkType::None:
        break;  // ordinary content
    }
  }
  return x;
}

void scan(const xml::Element& e, LinkCollection& out,
          std::vector<Issue>* issues) {
  switch (type_of(e)) {
    case LinkType::Simple:
      out.simple.push_back(read_simple(e));
      break;
    case LinkType::Extended:
      out.extended.push_back(read_extended(e, issues));
      return;  // children of an extended link are its constituents
    case LinkType::Locator:
    case LinkType::Arc:
    case LinkType::Resource:
    case LinkType::Title:
      note(issues, Issue::Severity::Warning,
           std::string(to_string(type_of(e))) +
               "-type element outside an extended link has no XLink meaning",
           &e);
      break;
    case LinkType::None:
      break;
  }
  for (const xml::Element* child : e.child_elements()) {
    scan(*child, out, issues);
  }
}

}  // namespace

LinkCollection extract(const xml::Document& doc, std::vector<Issue>* issues) {
  LinkCollection out;
  if (const xml::Element* root = doc.root()) {
    scan(*root, out, issues);
  }
  return out;
}

std::vector<Issue> validate(const LinkCollection& links) {
  std::vector<Issue> issues;
  for (const auto& s : links.simple) {
    if (s.href.empty()) {
      issues.push_back(Issue{Issue::Severity::Warning,
                             "simple link without xlink:href is untraversable",
                             s.element});
    }
  }
  for (const auto& x : links.extended) {
    std::set<std::string> labels;
    for (const auto& l : x.locators) {
      if (!l.label.empty()) labels.insert(l.label);
      if (l.href.empty()) {
        issues.push_back(Issue{Issue::Severity::Error,
                               "locator lacks xlink:href", l.element});
      }
    }
    for (const auto& r : x.resources) {
      if (!r.label.empty()) labels.insert(r.label);
    }
    for (const auto& a : x.arcs) {
      for (const std::string* lbl : {&a.from, &a.to}) {
        if (!lbl->empty() && labels.find(*lbl) == labels.end()) {
          issues.push_back(Issue{
              Issue::Severity::Error,
              "arc references label '" + *lbl +
                  "' but no locator or resource carries it",
              a.element});
        }
      }
    }
    if (x.arcs.empty() && !x.locators.empty()) {
      issues.push_back(Issue{Issue::Severity::Warning,
                             "extended link has locators but no arcs",
                             x.element});
    }
  }
  return issues;
}

}  // namespace navsep::xlink

// Line-oriented diffing (Myers O(ND)) and change statistics.
//
// The paper's central claim is about *change impact*: how many authored
// artifacts, and how many lines within them, must be touched to change an
// access structure. This module measures exactly that — it diffs two
// versions of a site artifact and aggregates counts across a whole site.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace navsep::diff {

enum class OpKind { Equal, Insert, Delete };

/// One run of consecutive lines with the same fate.
struct Op {
  OpKind kind = OpKind::Equal;
  std::size_t a_start = 0;  // line index in `a` (for Equal/Delete)
  std::size_t b_start = 0;  // line index in `b` (for Equal/Insert)
  std::size_t count = 0;
};

/// Line-level diff statistics.
struct Stats {
  std::size_t lines_added = 0;
  std::size_t lines_deleted = 0;
  std::size_t hunks = 0;         // maximal runs of non-equal ops
  std::size_t bytes_added = 0;
  std::size_t bytes_deleted = 0;

  [[nodiscard]] bool unchanged() const noexcept {
    return lines_added == 0 && lines_deleted == 0;
  }
  [[nodiscard]] std::size_t lines_changed() const noexcept {
    return lines_added + lines_deleted;
  }

  Stats& operator+=(const Stats& o) noexcept;
};

/// Split into lines; the trailing newline does not create an empty line.
[[nodiscard]] std::vector<std::string_view> split_lines(std::string_view text);

/// Myers diff over lines. The returned script transforms `a` into `b`.
[[nodiscard]] std::vector<Op> diff_lines(std::string_view a,
                                         std::string_view b);

/// Aggregate statistics of a diff.
[[nodiscard]] Stats stats(std::string_view a, std::string_view b);

/// Render a unified diff (with `context` lines of context) for humans.
[[nodiscard]] std::string unified(std::string_view a, std::string_view b,
                                  std::string_view a_name = "a",
                                  std::string_view b_name = "b",
                                  std::size_t context = 3);

/// Change statistics across two versions of a keyed artifact set
/// (path → content). Artifacts present on only one side count as fully
/// added/deleted.
struct SiteDelta {
  std::size_t files_touched = 0;
  std::size_t files_total = 0;
  Stats line_stats;
  std::vector<std::string> touched_paths;
};

[[nodiscard]] SiteDelta compare_sites(
    const std::vector<std::pair<std::string, std::string>>& before,
    const std::vector<std::pair<std::string, std::string>>& after);

}  // namespace navsep::diff

#include "diff/diff.hpp"

#include <algorithm>
#include <map>

namespace navsep::diff {

Stats& Stats::operator+=(const Stats& o) noexcept {
  lines_added += o.lines_added;
  lines_deleted += o.lines_deleted;
  hunks += o.hunks;
  bytes_added += o.bytes_added;
  bytes_deleted += o.bytes_deleted;
  return *this;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  if (start < text.size()) out.push_back(text.substr(start));
  return out;
}

namespace {

/// Myers' greedy O(ND) shortest-edit-script algorithm over interned lines,
/// with full trace kept for backtracking. Memory is O(D·(N+M)), which is
/// comfortably small for the page-sized artifacts this library diffs;
/// inputs beyond `kTraceLimit` edit distance fall back to a coarse
/// prefix/suffix-strip diff (correct script, not guaranteed minimal).
class Myers {
 public:
  Myers(const std::vector<int>& a, const std::vector<int>& b)
      : a_(a), b_(b) {}

  /// Pairs of (x, y) positions of matched elements, in order.
  std::vector<std::pair<std::size_t, std::size_t>> matches() {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    // Strip the common prefix/suffix first: cheap, and it bounds the
    // region the quadratic-memory search ever sees.
    std::size_t lo = 0;
    std::size_t a_hi = a_.size();
    std::size_t b_hi = b_.size();
    while (lo < a_hi && lo < b_hi && a_[lo] == b_[lo]) {
      out.emplace_back(lo, lo);
      ++lo;
    }
    std::size_t suffix = 0;
    while (a_hi > lo && b_hi > lo && a_[a_hi - 1] == b_[b_hi - 1]) {
      --a_hi;
      --b_hi;
      ++suffix;
    }
    middle(lo, a_hi, lo, b_hi, out);
    for (std::size_t i = 0; i < suffix; ++i) {
      out.emplace_back(a_hi + i, b_hi + i);
    }
    return out;
  }

 private:
  static constexpr std::ptrdiff_t kTraceLimit = 4096;

  void middle(std::size_t a_lo, std::size_t a_hi, std::size_t b_lo,
              std::size_t b_hi,
              std::vector<std::pair<std::size_t, std::size_t>>& out) {
    const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a_hi - a_lo);
    const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(b_hi - b_lo);
    if (n == 0 || m == 0) return;
    const std::ptrdiff_t max = std::min(n + m, kTraceLimit);
    const std::ptrdiff_t offset = max;
    std::vector<std::ptrdiff_t> v(static_cast<std::size_t>(2 * max + 2), 0);
    std::vector<std::vector<std::ptrdiff_t>> trace;

    std::ptrdiff_t found_d = -1;
    for (std::ptrdiff_t d = 0; d <= max && found_d < 0; ++d) {
      trace.push_back(v);
      for (std::ptrdiff_t k = -d; k <= d; k += 2) {
        std::ptrdiff_t x;
        if (k == -d ||
            (k != d && v[static_cast<std::size_t>(offset + k - 1)] <
                           v[static_cast<std::size_t>(offset + k + 1)])) {
          x = v[static_cast<std::size_t>(offset + k + 1)];
        } else {
          x = v[static_cast<std::size_t>(offset + k - 1)] + 1;
        }
        std::ptrdiff_t y = x - k;
        while (x < n && y < m &&
               a_[a_lo + static_cast<std::size_t>(x)] ==
                   b_[b_lo + static_cast<std::size_t>(y)]) {
          ++x;
          ++y;
        }
        v[static_cast<std::size_t>(offset + k)] = x;
        if (x >= n && y >= m) {
          found_d = d;
          break;
        }
      }
    }

    if (found_d < 0) {
      // Edit distance exceeds the trace budget: emit no matches for this
      // region (treated as full replacement). Correct, just not minimal.
      return;
    }

    // Backtrack from (n, m) to (0, 0), collecting matches in reverse.
    std::vector<std::pair<std::size_t, std::size_t>> rev;
    std::ptrdiff_t x = n, y = m;
    for (std::ptrdiff_t d = found_d; d > 0; --d) {
      const auto& pv = trace[static_cast<std::size_t>(d)];
      const std::ptrdiff_t k = x - y;
      std::ptrdiff_t prev_k;
      if (k == -d ||
          (k != d && pv[static_cast<std::size_t>(offset + k - 1)] <
                         pv[static_cast<std::size_t>(offset + k + 1)])) {
        prev_k = k + 1;
      } else {
        prev_k = k - 1;
      }
      const std::ptrdiff_t prev_x =
          pv[static_cast<std::size_t>(offset + prev_k)];
      const std::ptrdiff_t prev_y = prev_x - prev_k;
      while (x > prev_x && y > prev_y) {
        rev.emplace_back(a_lo + static_cast<std::size_t>(x - 1),
                         b_lo + static_cast<std::size_t>(y - 1));
        --x;
        --y;
      }
      x = prev_x;
      y = prev_y;
    }
    while (x > 0 && y > 0) {
      rev.emplace_back(a_lo + static_cast<std::size_t>(x - 1),
                       b_lo + static_cast<std::size_t>(y - 1));
      --x;
      --y;
    }
    out.insert(out.end(), rev.rbegin(), rev.rend());
  }

  const std::vector<int>& a_;
  const std::vector<int>& b_;
};

std::vector<int> intern(const std::vector<std::string_view>& lines,
                        std::map<std::string_view, int>& table) {
  std::vector<int> out;
  out.reserve(lines.size());
  for (std::string_view l : lines) {
    auto [it, _] = table.emplace(l, static_cast<int>(table.size()));
    out.push_back(it->second);
  }
  return out;
}

}  // namespace

std::vector<Op> diff_lines(std::string_view a, std::string_view b) {
  std::vector<std::string_view> la = split_lines(a);
  std::vector<std::string_view> lb = split_lines(b);
  std::map<std::string_view, int> table;
  std::vector<int> ia = intern(la, table);
  std::vector<int> ib = intern(lb, table);

  auto matched = Myers(ia, ib).matches();

  std::vector<Op> ops;
  auto push = [&ops](OpKind kind, std::size_t a_start, std::size_t b_start,
                     std::size_t count) {
    if (count == 0) return;
    if (!ops.empty() && ops.back().kind == kind &&
        ops.back().a_start + ops.back().count == a_start &&
        ops.back().b_start + ops.back().count == b_start) {
      ops.back().count += count;
      return;
    }
    ops.push_back(Op{kind, a_start, b_start, count});
  };

  std::size_t ai = 0, bi = 0;
  for (auto [ma, mb] : matched) {
    push(OpKind::Delete, ai, bi, ma - ai);
    ai = ma;
    push(OpKind::Insert, ai, bi, mb - bi);
    bi = mb;
    push(OpKind::Equal, ai, bi, 1);
    ++ai;
    ++bi;
  }
  push(OpKind::Delete, ai, bi, la.size() - ai);
  ai = la.size();
  push(OpKind::Insert, ai, bi, lb.size() - bi);
  return ops;
}

Stats stats(std::string_view a, std::string_view b) {
  std::vector<std::string_view> la = split_lines(a);
  std::vector<std::string_view> lb = split_lines(b);
  Stats out;
  bool in_hunk = false;
  for (const Op& op : diff_lines(a, b)) {
    switch (op.kind) {
      case OpKind::Equal:
        in_hunk = false;
        break;
      case OpKind::Insert:
        out.lines_added += op.count;
        for (std::size_t i = 0; i < op.count; ++i) {
          out.bytes_added += lb[op.b_start + i].size() + 1;
        }
        if (!in_hunk) ++out.hunks;
        in_hunk = true;
        break;
      case OpKind::Delete:
        out.lines_deleted += op.count;
        for (std::size_t i = 0; i < op.count; ++i) {
          out.bytes_deleted += la[op.a_start + i].size() + 1;
        }
        if (!in_hunk) ++out.hunks;
        in_hunk = true;
        break;
    }
  }
  return out;
}

std::string unified(std::string_view a, std::string_view b,
                    std::string_view a_name, std::string_view b_name,
                    std::size_t context) {
  std::vector<std::string_view> la = split_lines(a);
  std::vector<std::string_view> lb = split_lines(b);
  std::vector<Op> ops = diff_lines(a, b);

  std::string out;
  out += "--- " + std::string(a_name) + "\n";
  out += "+++ " + std::string(b_name) + "\n";

  // Group ops into hunks with `context` lines of surrounding equality.
  struct Line {
    char tag;
    std::string_view text;
    std::size_t a_line, b_line;
  };
  std::vector<Line> flat;
  for (const Op& op : ops) {
    for (std::size_t i = 0; i < op.count; ++i) {
      switch (op.kind) {
        case OpKind::Equal:
          flat.push_back(Line{' ', la[op.a_start + i], op.a_start + i,
                              op.b_start + i});
          break;
        case OpKind::Delete:
          flat.push_back(
              Line{'-', la[op.a_start + i], op.a_start + i, op.b_start});
          break;
        case OpKind::Insert:
          flat.push_back(
              Line{'+', lb[op.b_start + i], op.a_start, op.b_start + i});
          break;
      }
    }
  }

  std::size_t i = 0;
  while (i < flat.size()) {
    if (flat[i].tag == ' ') {
      ++i;
      continue;
    }
    // Hunk: back up `context`, run forward until `context` equals separate
    // us from the next change.
    std::size_t start = i >= context ? i - context : 0;
    while (start > 0 && flat[start - 1].tag != ' ') --start;
    std::size_t end = i;
    std::size_t equal_run = 0;
    while (end < flat.size()) {
      if (flat[end].tag == ' ') {
        ++equal_run;
        if (equal_run > context * 2) break;
      } else {
        equal_run = 0;
      }
      ++end;
    }
    if (equal_run > context) end -= equal_run - context;

    std::size_t a_first = flat[start].a_line;
    std::size_t b_first = flat[start].b_line;
    std::size_t a_count = 0, b_count = 0;
    for (std::size_t j = start; j < end; ++j) {
      if (flat[j].tag != '+') ++a_count;
      if (flat[j].tag != '-') ++b_count;
    }
    out += "@@ -" + std::to_string(a_first + 1) + "," +
           std::to_string(a_count) + " +" + std::to_string(b_first + 1) +
           "," + std::to_string(b_count) + " @@\n";
    for (std::size_t j = start; j < end; ++j) {
      out += flat[j].tag;
      out += std::string(flat[j].text);
      out += '\n';
    }
    i = end;
  }
  return out;
}

SiteDelta compare_sites(
    const std::vector<std::pair<std::string, std::string>>& before,
    const std::vector<std::pair<std::string, std::string>>& after) {
  SiteDelta out;
  std::map<std::string_view, const std::string*> b_map, a_map;
  for (const auto& [path, content] : before) b_map.emplace(path, &content);
  for (const auto& [path, content] : after) a_map.emplace(path, &content);

  std::map<std::string_view, int> all_paths;
  for (const auto& [p, _] : b_map) all_paths.emplace(p, 0);
  for (const auto& [p, _] : a_map) all_paths.emplace(p, 0);

  out.files_total = all_paths.size();
  for (const auto& [path, _] : all_paths) {
    auto bit = b_map.find(path);
    auto ait = a_map.find(path);
    std::string_view old_content =
        bit == b_map.end() ? std::string_view() : *bit->second;
    std::string_view new_content =
        ait == a_map.end() ? std::string_view() : *ait->second;
    Stats s = stats(old_content, new_content);
    if (!s.unchanged()) {
      ++out.files_touched;
      out.touched_paths.emplace_back(path);
      out.line_stats += s;
    }
  }
  return out;
}

}  // namespace navsep::diff

// XPointer: fragment identifiers for XML documents.
//
// The paper pairs XLink (which document) with XPointer (where in the
// document). We implement the XPointer Framework plus the three schemes
// the linkbase needs:
//
//   * shorthand pointers     — `#guitar` finds the element with that id;
//   * the element() scheme   — `#element(guitar/2)` / `#element(/1/3)`
//                              walks 1-based child-element sequences;
//   * the xmlns() scheme     — binds namespace prefixes for later parts;
//   * the xpointer() scheme  — full XPath via navsep::xpath.
//
// A pointer may carry several parts; per the framework, parts are tried
// left to right and the first one that resolves to a non-empty result wins
// (xmlns() parts contribute bindings instead of results).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"
#include "xpath/value.hpp"

namespace navsep::xpointer {

/// One scheme-qualified pointer part, e.g. xpointer(//painting[1]).
struct PointerPart {
  std::string scheme;  // "element", "xpointer", "xmlns", ...
  std::string data;    // unescaped scheme data
};

/// A parsed pointer: either a shorthand id or a list of parts.
struct Pointer {
  bool shorthand = false;
  std::string shorthand_id;
  std::vector<PointerPart> parts;

  /// Re-render the textual form (for diagnostics and serialization).
  [[nodiscard]] std::string to_string() const;
};

/// Parse the fragment text (without the leading '#').
/// Throws navsep::ParseError on unbalanced parentheses or bad escaping.
[[nodiscard]] Pointer parse(std::string_view fragment);

/// Resolve a parsed pointer against a document. Returns the selected nodes
/// (empty when nothing matches). Unknown schemes are skipped per the
/// XPointer framework; an unknown scheme as the *only* part resolves to an
/// empty set. Throws navsep::ParseError for malformed scheme data.
[[nodiscard]] xpath::NodeSet resolve(const Pointer& pointer,
                                     const xml::Document& doc);

/// Convenience: parse + resolve.
[[nodiscard]] xpath::NodeSet resolve(std::string_view fragment,
                                     const xml::Document& doc);

/// Convenience: resolve and return the single target element, or nullptr
/// when the pointer selects nothing or selects a non-element first.
[[nodiscard]] const xml::Element* resolve_element(std::string_view fragment,
                                                  const xml::Document& doc);

}  // namespace navsep::xpointer

#include "xpointer/xpointer.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/text_cursor.hpp"
#include "xpath/eval.hpp"

namespace navsep::xpointer {

namespace {

bool is_ncname_start(char c) noexcept {
  return strings::is_alpha(c) || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_ncname_char(char c) noexcept {
  return is_ncname_start(c) || strings::is_digit(c) || c == '-' || c == '.';
}

/// Scheme data runs to the balancing ')'; ^( ^) ^^ are escapes.
std::string parse_scheme_data(TextCursor& cur) {
  std::string out;
  int depth = 1;
  for (;;) {
    if (cur.eof()) cur.fail("unbalanced parentheses in pointer part");
    char c = cur.next();
    if (c == '^') {
      if (cur.eof()) cur.fail("dangling '^' escape in pointer part");
      char esc = cur.next();
      if (esc != '(' && esc != ')' && esc != '^') {
        cur.fail("invalid '^' escape in pointer part");
      }
      out.push_back(esc);
      continue;
    }
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth == 0) return out;
    }
    out.push_back(c);
  }
}

std::string escape_scheme_data(std::string_view data) {
  std::string out;
  for (char c : data) {
    if (c == '(' || c == ')' || c == '^') out.push_back('^');
    out.push_back(c);
  }
  return out;
}

/// element() scheme: [NCName] ("/" digits)*.
xpath::NodeSet resolve_element_scheme(std::string_view data,
                                      const xml::Document& doc) {
  TextCursor cur(data);
  const xml::Element* current = nullptr;
  if (is_ncname_start(cur.peek())) {
    std::string_view id = cur.take_while(is_ncname_char);
    current = doc.element_by_id(id);
    if (current == nullptr) return {};
  }
  while (!cur.eof()) {
    if (!cur.consume('/')) {
      cur.fail("expected '/' in element() child sequence");
    }
    std::string_view digits = cur.take_while(strings::is_digit);
    if (digits.empty()) cur.fail("expected child index in element() scheme");
    std::size_t index = 0;
    for (char d : digits) index = index * 10 + static_cast<std::size_t>(d - '0');
    if (index == 0) cur.fail("element() child indexes are 1-based");

    std::vector<const xml::Element*> kids;
    if (current == nullptr) {
      if (const xml::Element* root = doc.root()) kids.push_back(root);
    } else {
      kids = current->child_elements();
    }
    if (index > kids.size()) return {};
    current = kids[index - 1];
  }
  if (current == nullptr) return {};
  return xpath::NodeSet{current};
}

}  // namespace

std::string Pointer::to_string() const {
  if (shorthand) return shorthand_id;
  std::string out;
  for (const auto& p : parts) {
    out += p.scheme;
    out += '(';
    out += escape_scheme_data(p.data);
    out += ')';
  }
  return out;
}

Pointer parse(std::string_view fragment) {
  Pointer out;
  TextCursor cur(fragment);
  if (cur.eof()) {
    throw ParseError("empty XPointer", cur.position());
  }

  // Shorthand: a bare NCName with nothing after it.
  if (is_ncname_start(cur.peek())) {
    std::size_t mark = cur.offset();
    std::string_view name = cur.take_while(is_ncname_char);
    if (cur.eof()) {
      out.shorthand = true;
      out.shorthand_id = std::string(name);
      return out;
    }
    // Not shorthand after all — rewind by re-scanning as scheme parts.
    cur = TextCursor(fragment);
    cur.advance(mark);
  }

  while (!cur.eof()) {
    cur.skip_ws();
    if (cur.eof()) break;
    if (!is_ncname_start(cur.peek())) {
      cur.fail("expected scheme name in pointer part");
    }
    std::string scheme(cur.take_while([](char c) {
      return is_ncname_char(c) || c == ':';
    }));
    if (!cur.consume('(')) {
      cur.fail("expected '(' after scheme name '" + scheme + "'");
    }
    std::string data = parse_scheme_data(cur);
    out.parts.push_back(PointerPart{std::move(scheme), std::move(data)});
  }
  if (out.parts.empty()) {
    throw ParseError("no pointer parts found", Position{});
  }
  return out;
}

xpath::NodeSet resolve(const Pointer& pointer, const xml::Document& doc) {
  if (pointer.shorthand) {
    if (const xml::Element* e = doc.element_by_id(pointer.shorthand_id)) {
      return xpath::NodeSet{e};
    }
    return {};
  }

  xpath::Environment env;  // accumulates xmlns() bindings across parts
  for (const auto& part : pointer.parts) {
    if (part.scheme == "xmlns") {
      std::size_t eq = part.data.find('=');
      if (eq == std::string::npos) {
        throw ParseError("xmlns() part needs 'prefix=uri'", Position{});
      }
      std::string prefix(strings::trim(part.data.substr(0, eq)));
      std::string uri(strings::trim(part.data.substr(eq + 1)));
      env.namespaces[prefix] = uri;
      continue;
    }
    if (part.scheme == "element") {
      xpath::NodeSet hits = resolve_element_scheme(part.data, doc);
      if (!hits.empty()) return hits;
      continue;
    }
    if (part.scheme == "xpointer") {
      // Errors inside one part make that part fail, not the whole pointer
      // (XPointer framework semantics) — but a part that *parses* and
      // returns nothing simply falls through to the next part.
      try {
        xpath::NodeSet hits = xpath::select(part.data, doc, env);
        if (!hits.empty()) return hits;
      } catch (const Error&) {
        // fall through to the next part
      }
      continue;
    }
    // Unknown scheme: skip (framework-conformant).
  }
  return {};
}

xpath::NodeSet resolve(std::string_view fragment, const xml::Document& doc) {
  return resolve(parse(fragment), doc);
}

const xml::Element* resolve_element(std::string_view fragment,
                                    const xml::Document& doc) {
  xpath::NodeSet hits = resolve(fragment, doc);
  if (hits.empty()) return nullptr;
  return hits.front()->as_element();
}

}  // namespace navsep::xpointer

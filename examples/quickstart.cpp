// Quickstart: the paper's example through the navsep::nav façade.
//
// One fluent pipeline takes the museum of the paper (Picasso: The Guitar
// / Guernica / Les Demoiselles d'Avignon) from conceptual model to woven,
// served site: the navigational aspect is authored as an XLink linkbase
// and woven back at page composition. The browser then actually consumes
// the XLink arcs — the demonstration 2002 browsers could not give.
//
// Run: build/examples/quickstart
#include <cstdio>

#include "nav/pipeline.hpp"

int main() {
  using namespace navsep;

  // Conceptual model -> navigational schema -> access structure ->
  // weaving -> served site, in one sentence. The access structure is the
  // one the customer asked for *after* the change request: an Indexed
  // Guided Tour over Picasso's paintings.
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hypermedia::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .weave()
                    .serve();

  std::printf("=== links.xml (the authored navigational aspect) ===\n%s\n",
              engine->site().get("links.xml")->c_str());
  std::printf("=== guitar.html (woven page) ===\n%s\n",
              engine->site().get("guitar.html")->c_str());

  // Navigate the woven result through the end-user role interface.
  nav::Navigating& browser = engine->navigator();
  browser.navigate("guitar.html");
  browser.follow_role("next");
  browser.follow_role("next");
  browser.follow_role("up");
  std::printf("tour walked: ");
  for (const std::string& uri : engine->session().history()) {
    std::printf("%s ", uri.c_str());
  }

  const aop::WeaverStats& stats = engine->internals().weaver().stats();
  std::printf(
      "\nweaver: %zu join points, %zu advice invocations, %zu cache hits\n",
      stats.join_points_executed, stats.advice_invocations,
      stats.match_cache_hits);
  return 0;
}

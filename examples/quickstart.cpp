// Quickstart: the paper's example in ~60 lines of client code.
//
// Builds the museum of the paper (Picasso: The Guitar / Guernica /
// Les Demoiselles d'Avignon), separates the navigational aspect as an
// XLink linkbase, weaves it back at page composition, and prints the
// woven Guitar page plus the authored links.xml.
//
// Run: build/examples/quickstart
#include <cstdio>

#include "aop/weaver.hpp"
#include "core/linkbase.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "museum/museum.hpp"
#include "xml/serializer.hpp"

int main() {
  using namespace navsep;

  // 1. The conceptual + navigational model (OOHDM layers).
  auto world = museum::MuseumWorld::paper_instance();
  hypermedia::NavigationalModel nav = world->derive_navigation();

  // 2. The access structure the customer asked for *after* the change
  //    request: an Indexed Guided Tour over Picasso's paintings.
  auto structure = world->paintings_structure(
      hypermedia::AccessStructureKind::IndexedGuidedTour, nav, "picasso");

  // 3. Separate the navigational aspect: every arc lives in links.xml.
  auto linkbase = core::build_linkbase(*structure);
  std::string links_xml = xml::write(*linkbase, {.pretty = true});

  // 4. Weave it back: the page renderer knows nothing about navigation;
  //    the navigation aspect injects the anchors at PageCompose.
  aop::Weaver weaver;
  weaver.register_aspect(
      core::NavigationAspect::from_linkbase(core::load_linkbase(*linkbase)));
  core::SeparatedComposer composer(weaver);

  std::string guitar = composer.compose_node_page(*nav.node("guitar"));

  std::printf("=== links.xml (the authored navigational aspect) ===\n%s\n",
              links_xml.c_str());
  std::printf("=== guitar.html (woven page) ===\n%s\n", guitar.c_str());
  std::printf(
      "weaver: %zu join points, %zu advice invocations, %zu cache hits\n",
      weaver.stats().join_points_executed, weaver.stats().advice_invocations,
      weaver.stats().match_cache_hits);
  return 0;
}

// xlink_tour: drive the browser simulator across the woven site by
// actuating XLink arcs — the demonstration 2002 browsers couldn't give.
//
// The pipeline builds the separated site and serves it; the tour then
// walks index -> first painting -> next -> next -> up through the
// role-segregated nav::Navigating interface, printing the arcs offered at
// every stop and exercising history (back/forward).
//
// Run: build/examples/xlink_tour
#include <cstdio>

#include "nav/pipeline.hpp"

int main() {
  using namespace navsep;

  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hypermedia::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .weave()
                    .serve();

  nav::Navigating& browser = engine->navigator();
  auto show_stop = [&] {
    std::printf("\n@ %s\n", browser.location().c_str());
    for (const xlink::Arc* arc : browser.links()) {
      std::printf("   [%s] -> %s  (%s)\n", arc->arcrole.c_str(),
                  arc->to.uri.c_str(),
                  arc->title.empty() ? "-" : arc->title.c_str());
    }
  };

  std::printf("=== touring %zu arcs of the linkbase ===\n",
              engine->internals().arc_table().arcs().size());
  browser.navigate("index-paintings-of-picasso.html");
  show_stop();
  browser.follow_role("index-entry");
  show_stop();
  browser.follow_role("next");
  show_stop();
  browser.follow_role("next");
  show_stop();
  browser.follow_role("up");
  show_stop();

  std::printf("\n=== history exercise ===\n");
  browser.back();
  std::printf("back    -> %s\n", browser.location().c_str());
  browser.back();
  std::printf("back    -> %s\n", browser.location().c_str());
  browser.forward();
  std::printf("forward -> %s\n", browser.location().c_str());

  const nav::SessionView& session = engine->session();
  // One coherent counter sample instead of four separately-read atomics.
  const navsep::site::HypermediaServer::Stats stats = engine->server().stats();
  std::printf("\nvisited %zu pages, server served %zu requests "
              "(%zu misses, %zu cache hits, %zu cached)\n",
              session.pages_visited(), stats.requests, stats.misses,
              stats.cache_hits, stats.cache_size);
  return 0;
}

// xlink_tour: drive the browser simulator across the woven site by
// actuating XLink arcs — the demonstration 2002 browsers couldn't give.
//
// Builds the separated site, loads its links.xml into a traversal graph,
// then walks: index -> first painting -> next -> next -> up, printing the
// arcs offered at every stop and exercising history (back/forward).
//
// Run: build/examples/xlink_tour
#include <cstdio>

#include "museum/museum.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"
#include "site/virtual_site.hpp"
#include "xml/parser.hpp"

int main() {
  using namespace navsep;

  auto world = museum::MuseumWorld::paper_instance();
  hypermedia::NavigationalModel nav = world->derive_navigation();
  auto igt = world->paintings_structure(
      hypermedia::AccessStructureKind::IndexedGuidedTour, nav, "picasso");

  const std::string base = "http://museum.example/site/";
  site::VirtualSite built = site::build_separated_site(*world, *igt);

  xml::ParseOptions opts;
  opts.base_uri = base + "links.xml";
  auto linkbase = xml::parse(*built.get("links.xml"), opts);
  xlink::TraversalGraph graph = xlink::TraversalGraph::from_linkbase(*linkbase);

  site::HypermediaServer server(built, base);
  site::Browser browser(server, graph);

  auto show_stop = [&] {
    std::printf("\n@ %s\n", browser.location().c_str());
    for (const xlink::Arc* arc : browser.links()) {
      std::printf("   [%s] -> %s  (%s)\n", arc->arcrole.c_str(),
                  arc->to.uri.c_str(),
                  arc->title.empty() ? "-" : arc->title.c_str());
    }
  };

  std::printf("=== touring %zu arcs of the linkbase ===\n",
              graph.arcs().size());
  browser.navigate("index-paintings-of-picasso.html");
  show_stop();
  browser.follow_role("index-entry");
  show_stop();
  browser.follow_role("next");
  show_stop();
  browser.follow_role("next");
  show_stop();
  browser.follow_role("up");
  show_stop();

  std::printf("\n=== history exercise ===\n");
  browser.back();
  std::printf("back    -> %s\n", browser.location().c_str());
  browser.back();
  std::printf("back    -> %s\n", browser.location().c_str());
  browser.forward();
  std::printf("forward -> %s\n", browser.location().c_str());

  std::printf("\nvisited %zu pages, server served %zu requests (%zu misses)\n",
              browser.pages_visited(), server.requests(), server.misses());
  return 0;
}

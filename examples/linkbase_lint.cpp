// linkbase_lint: a developer tool for the separated workflow.
//
// When navigation lives in links.xml, that file becomes the thing to get
// right. This linter loads a linkbase (and, optionally, the data documents
// next to it), then reports:
//   * XLink structural issues (dangling labels, locators without hrefs),
//   * arcs whose endpoints do not resolve against the supplied documents,
//   * a summary of the traversal graph (resources, arcs per role).
//
// Usage:
//   build/examples/linkbase_lint <links.xml> [data.xml ...]
//   build/examples/linkbase_lint            # lints a built-in demo museum
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/linkbase.hpp"
#include "nav/pipeline.hpp"
#include "xlink/processor.hpp"
#include "xlink/traversal.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string file_uri(const std::filesystem::path& path) {
  return "file://" + std::filesystem::absolute(path).generic_string();
}

int lint(const navsep::xml::Document& linkbase,
         const navsep::xlink::DocumentRegistry& registry,
         std::size_t known_documents) {
  using namespace navsep;

  int errors = 0;

  std::vector<xlink::Issue> extraction_issues;
  xlink::LinkCollection links = xlink::extract(linkbase, &extraction_issues);
  std::vector<xlink::Issue> issues = xlink::validate(links);
  issues.insert(issues.end(), extraction_issues.begin(),
                extraction_issues.end());

  std::printf("linking elements : %zu extended, %zu simple\n",
              links.extended.size(), links.simple.size());
  for (const auto& issue : issues) {
    bool is_error = issue.severity == xlink::Issue::Severity::Error;
    if (is_error) ++errors;
    std::printf("  [%s] %s\n", is_error ? "ERROR" : "warn",
                issue.message.c_str());
  }

  xlink::TraversalGraph graph = xlink::TraversalGraph::from_linkbase(linkbase);
  std::map<std::string, std::size_t> by_role;
  for (const auto& arc : graph.arcs()) ++by_role[arc.arcrole];
  std::printf("traversal graph  : %zu arcs over %zu resources\n",
              graph.arcs().size(), graph.resource_uris().size());
  for (const auto& [role, count] : by_role) {
    std::printf("  %-24s %zu\n", role.empty() ? "(no arcrole)" : role.c_str(),
                count);
  }

  if (known_documents > 0) {
    std::size_t resolved = 0, unresolved = 0;
    for (const std::string& uri : graph.resource_uris()) {
      if (registry.find(uri) == nullptr) continue;  // different document
      if (registry.resolve(uri) != nullptr) {
        ++resolved;
      } else {
        ++unresolved;
        ++errors;
        std::printf("  [ERROR] endpoint does not resolve: %s\n", uri.c_str());
      }
    }
    std::printf("endpoint check   : %zu resolved, %zu broken (across %zu "
                "supplied documents)\n",
                resolved, unresolved, known_documents);
  }

  std::printf("%s\n", errors == 0 ? "OK" : "FAILED");
  return errors == 0 ? 0 : 1;
}

int lint_demo() {
  using namespace navsep;
  std::printf("(no arguments: linting a generated demo linkbase)\n\n");
  // The façade carries the demo from conceptual model to access
  // structure; the linter then checks a data-document-targeting linkbase
  // authored over it.
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hypermedia::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .weave()
                    .serve();

  core::LinkbaseOptions options;
  options.base_uri = engine->server().uri_of("links.xml");
  options.data_href = [](std::string_view id) {
    return "data/" + std::string(id) + ".xml";
  };
  auto linkbase = core::build_linkbase(engine->structure(), options);

  // Register the painting documents so endpoint checking has targets.
  std::vector<std::unique_ptr<xml::Document>> docs;
  xlink::DocumentRegistry registry;
  for (const std::string& id : engine->world().painting_ids()) {
    xml::ParseOptions popts;
    popts.base_uri = engine->server().uri_of("data/" + id + ".xml");
    docs.push_back(xml::parse(
        xml::write(*engine->world().painting_document(id), {}), popts));
    registry.add(*docs.back());
  }
  return lint(*linkbase, registry, docs.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace navsep;
  if (argc < 2) return lint_demo();

  std::filesystem::path linkbase_path = argv[1];
  xml::ParseOptions opts;
  opts.base_uri = file_uri(linkbase_path);
  std::unique_ptr<xml::Document> linkbase;
  try {
    linkbase = xml::parse(slurp(linkbase_path), opts);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.what());
    return 2;
  }

  std::vector<std::unique_ptr<xml::Document>> docs;
  xlink::DocumentRegistry registry;
  for (int i = 2; i < argc; ++i) {
    xml::ParseOptions dopts;
    dopts.base_uri = file_uri(argv[i]);
    try {
      docs.push_back(xml::parse(slurp(argv[i]), dopts));
      registry.add(*docs.back());
    } catch (const Error& e) {
      std::fprintf(stderr, "%s: %s\n", argv[i], e.what());
      return 2;
    }
  }
  std::printf("linting %s\n\n", argv[1]);
  return lint(*linkbase, registry, docs.size());
}

// aspect_weaving: the AOP machinery exposed — write your own aspects
// against the hypermedia join-point model.
//
// The pipeline supplies the library's navigation aspect; this example
// reaches through the framework role (EngineInternals) to weave two more
// into the same engine:
//   breadcrumbs — adds a "you are here: 2 of 3" marker, but ONLY on pages
//                 composed inside a ByAuthor context (within() pointcut)
//   audit       — counts traversals per arc role from session join points
//
// Run: build/examples/aspect_weaving
#include <cstdio>
#include <map>

#include "nav/pipeline.hpp"

int main() {
  using namespace navsep;

  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hypermedia::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .contexts({"ByAuthor"})
                    .weave()
                    .serve();

  // The framework door: custom aspects go through internals(), never
  // through the end-user navigation surface.
  aop::Weaver& weaver = engine->internals().weaver();
  const hypermedia::ContextFamily& by_author = engine->context_families()[0];

  // 1. A custom breadcrumb aspect: position marker, by-author pages only.
  auto breadcrumbs = std::make_shared<aop::Aspect>("breadcrumbs", 5);
  breadcrumbs->after(
      "compose(PaintingNode) && within(ByAuthor:*)",
      [&](aop::JoinPointContext& ctx) {
        auto* body = ctx.payload_as<xml::Element*>();
        if (body == nullptr || *body == nullptr) return;
        const std::string& id = ctx.join_point().instance;
        const auto* context =
            by_author.containing(id).empty() ? nullptr
                                             : by_author.containing(id)[0];
        if (context == nullptr) return;
        auto pos = context->position_of(id);
        xml::Element& p = (*body)->append_element("p");
        p.set_attribute("class", "breadcrumb");
        p.append_text("You are at painting " +
                      std::to_string(pos.value_or(0) + 1) + " of " +
                      std::to_string(context->size()) + " by this author");
      },
      "position marker inside by-author contexts");
  weaver.register_aspect(breadcrumbs);

  // 2. An audit aspect observing session traversals.
  std::map<std::string, int> role_counts;
  auto audit = std::make_shared<aop::Aspect>("audit");
  audit->before("traverse(*)", [&](aop::JoinPointContext& ctx) {
    role_counts[std::string(ctx.join_point().tag("role"))]++;
  });
  weaver.register_aspect(audit);

  // Compose the same page in and out of context, through the engine.
  std::string plain = engine->compose_page("guernica");
  std::string contextual =
      engine->compose_page("guernica", "ByAuthor:picasso");

  std::printf("=== guernica.html, no context (no breadcrumb) ===\n%s\n",
              plain.c_str());
  std::printf("=== guernica.html, within ByAuthor:picasso ===\n%s\n",
              contextual.c_str());

  // Browse a little so the audit aspect sees traversals.
  site::NavigationSession session = engine->open_session();
  session.enter_context("ByAuthor", "picasso", "guitar");
  while (session.next()) {
  }
  session.prev();
  session.leave_context();

  std::printf("=== audit: traversals by role ===\n");
  for (const auto& [role, count] : role_counts) {
    std::printf("  %-16s %d\n", role.c_str(), count);
  }
  std::printf("=== weaver stats ===\n");
  std::printf("  join points executed : %zu\n",
              weaver.stats().join_points_executed);
  std::printf("  advice invocations   : %zu\n",
              weaver.stats().advice_invocations);
  std::printf("  match cache hit/miss : %zu/%zu\n",
              weaver.stats().match_cache_hits,
              weaver.stats().match_cache_misses);
  return 0;
}

// museum_site: build the whole museum web site, both ways, and write it to
// disk so the artifacts can be inspected side by side.
//
//   museum-site/separated/   data/*.xml, links.xml, presentation.xsl,
//                            museum.css and the woven *.html pages
//   museum-site/tangled/     *.html with navigation baked in
//
// Both builds run through nav::SitePipeline — same stages, one flipped
// switch (.weave() vs .tangled()).
//
// Usage: build/examples/museum_site [painters] [paintings-per-painter]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "nav/pipeline.hpp"

namespace {

void write_site(const navsep::site::VirtualSite& site,
                const std::filesystem::path& root) {
  for (const auto& [path, content] : site.artifacts()) {
    std::filesystem::path full = root / path;
    std::filesystem::create_directories(full.parent_path());
    std::ofstream out(full, std::ios::binary);
    out << content;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace navsep;

  std::size_t painters = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4;
  std::size_t paintings = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  // One conceptual world feeds both pipelines (borrowed, not moved).
  auto world = museum::MuseumWorld::synthetic({.painters = painters,
                                               .paintings_per_painter =
                                                   paintings,
                                               .movements = 3,
                                               .seed = 2026});
  constexpr auto kKind = hypermedia::AccessStructureKind::IndexedGuidedTour;

  site::VirtualSite separated =
      nav::SitePipeline().conceptual(*world).access(kKind).weave().build();
  site::VirtualSite tangled =
      nav::SitePipeline().conceptual(*world).access(kKind).tangled().build();

  write_site(separated, "museum-site/separated");
  write_site(tangled, "museum-site/tangled");

  std::printf("museum: %zu painters, %zu paintings\n", painters,
              painters * paintings);
  std::printf("separated site: %zu artifacts, %zu bytes -> %s\n",
              separated.size(), separated.total_bytes(),
              "museum-site/separated");
  std::printf("tangled   site: %zu artifacts, %zu bytes -> %s\n",
              tangled.size(), tangled.total_bytes(), "museum-site/tangled");
  std::printf("\nseparated artifact list:\n");
  for (const std::string& path : separated.paths()) {
    std::printf("  %s\n", path.c_str());
  }
  return 0;
}

// access_structure_migration: the paper's §5 change request, replayed.
//
// "Later, when a prototype of the application was shown to the customer,
//  he decided he also wanted to navigate from one painting to another
//  painting by the same author."
//
// The pipeline serves the "before" site (Index); the migration then
// measures what switching to an IndexedGuidedTour costs each
// implementation style — ending with the unified diff of the ONE artifact
// the separated design changes.
//
// Usage: build/examples/access_structure_migration [paintings]
#include <cstdio>
#include <cstdlib>

#include "core/linkbase.hpp"
#include "core/migration.hpp"
#include "diff/diff.hpp"
#include "nav/pipeline.hpp"
#include "xml/serializer.hpp"

int main(int argc, char** argv) {
  using namespace navsep;

  std::size_t paintings = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  auto engine = nav::SitePipeline()
                    .conceptual(museum::SyntheticSpec{.painters = 1,
                                                      .paintings_per_painter =
                                                          paintings,
                                                      .movements = 2,
                                                      .seed = 7})
                    .schema()
                    .access(hypermedia::AccessStructureKind::Index, "painter-0")
                    .weave()
                    .serve();

  // The "before" structure is the engine's; the "after" is the customer's
  // new request, derived from the same world and model.
  const hypermedia::AccessStructure& index = engine->structure();
  auto igt = engine->world().paintings_structure(
      hypermedia::AccessStructureKind::IndexedGuidedTour, engine->navigation(),
      "painter-0");

  core::MigrationOptions options;
  options.separated_fixed_artifacts = engine->world().data_artifacts();
  core::MigrationReport report = core::measure_migration(
      engine->navigation(), index, *igt, options);

  std::printf("=== Index -> IndexedGuidedTour on a %zu-painting context ===\n",
              paintings);
  std::printf("\n%-28s %10s %10s %14s\n", "implementation", "artifacts",
              "touched", "lines changed");
  std::printf("%-28s %10zu %10zu %14zu\n", "tangled (HTML pages)",
              report.tangled_artifacts,
              report.tangled_authored.files_touched,
              report.tangled_authored.line_stats.lines_changed());
  std::printf("%-28s %10zu %10zu %14zu\n", "separated (data+links.xml)",
              report.separated_artifacts,
              report.separated_authored.files_touched,
              report.separated_authored.line_stats.lines_changed());
  std::printf("\ntouched artifacts, tangled:\n");
  for (const std::string& p : report.tangled_authored.touched_paths) {
    std::printf("  %s\n", p.c_str());
  }
  std::printf("touched artifacts, separated:\n");
  for (const std::string& p : report.separated_authored.touched_paths) {
    std::printf("  %s\n", p.c_str());
  }

  // The single separated change, as the developer would see it in review.
  std::string before =
      xml::write(*core::build_linkbase(index), {.pretty = true});
  std::string after =
      xml::write(*core::build_linkbase(*igt), {.pretty = true});
  std::printf("\n=== the one separated diff (links.xml) ===\n%s",
              diff::unified(before, after, "links.xml (Index)",
                            "links.xml (IndexedGuidedTour)", 2)
                  .c_str());
  return 0;
}

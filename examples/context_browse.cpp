// context_browse: the paper's §2 museum scenario, executed.
//
// "If we got the information navigating through the author, and then we
//  push on a link Next, we will move to the next painting by the same
//  author. However, if we got the painting through a pictorial movement,
//  the result of the navigation will be different."
//
// The pipeline builds a museum where two painters share a movement and
// authors BOTH tour families as contextual linkbases. The session then
// reaches the SAME painting twice — once through its author, once through
// the movement — and shows that Next resolves differently.
//
// Run: build/examples/context_browse
#include <cstdio>

#include "nav/pipeline.hpp"

int main() {
  using namespace navsep;

  auto engine =
      nav::SitePipeline()
          .conceptual(museum::SyntheticSpec{.painters = 2,
                                            .paintings_per_painter = 3,
                                            .movements = 1,
                                            .seed = 2002})
          .schema()
          .access(hypermedia::AccessStructureKind::IndexedGuidedTour)
          .contexts({"ByAuthor", "ByMovement"})
          .weave()
          .serve();

  // The separated specification of the by-author tour family, exactly as
  // authored into the site.
  std::printf("=== contextual linkbase (ByAuthor family) ===\n%s\n",
              engine->site().get("links-byauthor.xml")->c_str());

  site::NavigationSession session = engine->open_session();

  const char* painting = "painter-0-work-2";  // painter-0's last work
  std::printf("painting under study: %s (\"%s\")\n\n", painting,
              engine->navigation().node(painting)->title().c_str());

  // Route 1: reached through the author.
  session.enter_context("ByAuthor", "painter-0", painting);
  auto pos = session.position().value_or(std::make_pair(std::size_t{0},
                                                        std::size_t{0}));
  std::printf("reached via ByAuthor:painter-0 (position %zu of %zu)\n",
              pos.first, pos.second);
  if (session.next()) {
    std::printf("  Next -> %s\n", session.current()->id().c_str());
  } else {
    std::printf("  Next -> (none: last painting by this author)\n");
  }

  // Route 2: the same painting through the movement.
  session.visit(painting);
  session.through("ByMovement");
  pos = session.position().value_or(std::make_pair(std::size_t{0},
                                                   std::size_t{0}));
  std::printf("reached via %s (position %zu of %zu)\n",
              session.context_tag().c_str(), pos.first, pos.second);
  if (session.next()) {
    std::printf("  Next -> %s  (a different painter's work!)\n",
                session.current()->id().c_str());
  }

  std::printf("\ntrail: ");
  for (const std::string& id : session.trail()) {
    std::printf("%s ", id.c_str());
  }
  std::printf("\n");
  return 0;
}

# Doc-tested snippets: extract every ```cpp fence from a markdown file
# into a compilable translation unit, so the documentation cannot rot —
# each snippet builds against the current headers and runs as a ctest.
#
# Rules the snippets must follow (all current README/DESIGN fences do):
#   * tagged ```cpp (bare ``` and other languages are ignored);
#   * no backtick characters inside the code;
#   * either a self-contained program (defines int main) or a fragment of
#     statements valid inside a main() body, assuming `using namespace
#     navsep` and the prelude includes below;
#   * #include lines anywhere in a fragment are hoisted to file scope.
#
# Usage:
#   navsep_extract_snippets(<markdown-path> <output-dir> <out-var>)
# appends the generated .cpp paths to <out-var> in the caller's scope.

set(NAVSEP_SNIPPET_PRELUDE
"#include <algorithm>
#include <cstddef>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include \"hypermedia/access.hpp\"
#include \"hypermedia/context.hpp\"
#include \"nav/pipeline.hpp\"
#include \"serve/concurrent_server.hpp\"
#include \"serve/workload.hpp\"
")

function(navsep_extract_snippets markdown_path output_dir out_var)
  get_filename_component(doc_stem ${markdown_path} NAME_WE)
  string(TOLOWER "${doc_stem}" doc_stem)
  file(READ ${markdown_path} content)

  # Re-extract whenever the document changes.
  set_property(DIRECTORY ${CMAKE_CURRENT_SOURCE_DIR} APPEND PROPERTY
    CMAKE_CONFIGURE_DEPENDS ${markdown_path})

  # Scan fences with FIND/SUBSTRING: C++ code is full of semicolons, so
  # it must never pass through CMake list semantics (a REGEX MATCHALL
  # result would splinter at every ';').
  set(generated)
  set(index 0)
  set(rest "${content}")
  while(TRUE)
    string(FIND "${rest}" "```cpp\n" open)
    if(open EQUAL -1)
      break()
    endif()
    math(EXPR code_start "${open} + 7")
    string(SUBSTRING "${rest}" ${code_start} -1 rest)
    string(FIND "${rest}" "```" close)
    if(close EQUAL -1)
      break()
    endif()
    string(SUBSTRING "${rest}" 0 ${close} code)
    math(EXPR fence_end "${close} + 3")
    string(SUBSTRING "${rest}" ${fence_end} -1 rest)

    # Hoist #include lines to file scope (fragments may carry them).
    string(REGEX MATCHALL "#include [^\n]*" hoisted "${code}")
    string(REGEX REPLACE "#include [^\n]*\n?" "" code "${code}")
    string(REPLACE ";" "\n" hoisted "${hoisted}")

    set(unit "// Generated from ${markdown_path} (cpp fence ${index})\n")
    string(APPEND unit "// by cmake/ExtractSnippets.cmake — edit the doc, "
                       "not this file.\n")
    string(APPEND unit "${NAVSEP_SNIPPET_PRELUDE}")
    if(NOT hoisted STREQUAL "")
      string(APPEND unit "${hoisted}\n")
    endif()
    string(APPEND unit "\nusing namespace navsep;\n")
    string(APPEND unit "using navsep::hypermedia::AccessStructureKind;\n\n")
    string(FIND "${code}" "int main(" has_main)
    if(has_main GREATER -1)
      string(APPEND unit "${code}")
    else()
      string(APPEND unit "int main() {\n${code}\nreturn 0;\n}\n")
    endif()

    set(snippet_path ${output_dir}/${doc_stem}_${index}.cpp)
    # Write only on change so an untouched doc does not trigger rebuilds.
    if(EXISTS ${snippet_path})
      file(READ ${snippet_path} previous)
    else()
      set(previous "")
    endif()
    if(NOT previous STREQUAL unit)
      file(WRITE ${snippet_path} "${unit}")
    endif()
    list(APPEND generated ${snippet_path})
    math(EXPR index "${index} + 1")
  endwhile()

  list(APPEND ${out_var} ${generated})
  set(${out_var} "${${out_var}}" PARENT_SCOPE)
endfunction()

// F4 — Figure 4: the Guitar node re-implemented with an Indexed Guided
// Tour — the paper's "only two lines of HTML, but on every page".
//
// For each context size N this bench renders a member page under Index
// and under IGT (the "before" engine comes out of nav::SitePipeline, the
// "after" structure from the same world), diffs them, and reports:
//
//   lines_added_per_page   — the per-page cost the paper calls small
//   pages_affected         — N (every member of the context)
//   total_lines_added      — the real cost of the change, ∝ N
//
// Expected shape: lines_added_per_page constant; total cost linear in N.
#include <benchmark/benchmark.h>

#include "core/renderer.hpp"
#include "diff/diff.hpp"
#include "nav/pipeline.hpp"

namespace {

using navsep::core::TangledRenderer;
using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> make_engine(std::size_t n) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter = n,
                                                .movements = 2,
                                                .seed = 3})
      .access(AccessStructureKind::Index, "painter-0")
      .tangled()
      .serve();
}

void BM_IgtMigrationCost(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)));
  const auto& nav_model = engine->navigation();
  const auto& index = engine->structure();
  auto igt = engine->world().paintings_structure(
      AccessStructureKind::IndexedGuidedTour, nav_model, "painter-0");
  TangledRenderer index_renderer(nav_model, index);
  TangledRenderer igt_renderer(nav_model, *igt);

  std::size_t per_page = 0;
  std::size_t total = 0;
  std::size_t affected = 0;
  for (auto _ : state) {
    total = 0;
    affected = 0;
    for (const auto& member : index.members()) {
      const auto* node = nav_model.node(member.node_id);
      std::string before = index_renderer.render_node_page(*node);
      std::string after = igt_renderer.render_node_page(*node);
      navsep::diff::Stats s = navsep::diff::stats(before, after);
      if (!s.unchanged()) {
        ++affected;
        total += s.lines_changed();
        per_page = s.lines_changed();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.counters["pages_affected"] = static_cast<double>(affected);
  state.counters["lines_changed_last_page"] = static_cast<double>(per_page);
  state.counters["total_lines_changed"] = static_cast<double>(total);
}

void BM_IgtPageRender(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)));
  auto igt = engine->world().paintings_structure(
      AccessStructureKind::IndexedGuidedTour, engine->navigation(),
      "painter-0");
  TangledRenderer renderer(engine->navigation(), *igt);
  const auto* node =
      engine->navigation().node("painter-0-work-1");  // a middle node
  for (auto _ : state) {
    std::string page = renderer.render_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
}

}  // namespace

BENCHMARK(BM_IgtMigrationCost)->Arg(3)->Arg(10)->Arg(30)->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IgtPageRender)->Arg(3)->Arg(30)->Arg(300);

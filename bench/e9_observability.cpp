// E9 — what does watching the system cost?
//
// PR 8 wired one obs::Registry across every layer and gave each
// workload session a navigation trace ring. The claim worth pricing:
// telemetry is compile-in cheap and run-time sampleable — the serve
// hot path stays wait-free, capture costs one ring store per sampled
// step, and metrics export happens only at snapshot() time. This
// experiment measures it under the e4 churn regime: a writer thread
// re-authors arc titles continuously (one published epoch per edit)
// while mixed-behavior sessions (including ProfileMix overlay traffic)
// navigate.
//
// The sweep crosses telemetry {off, sampled (every 16th step), full
// (every step)} × threads × museum size. Per cell: p50/p99 serve
// latency (interpolated log2 quantiles), throughput, traces recorded /
// dropped, epochs published mid-run, and — the headline — the p50
// overhead of each telemetry mode against the `off` baseline of the
// same cell. The modes are interleaved over several rounds; the
// overhead is the median of the per-round paired ratios, which
// suppresses scheduler noise (dominant on a 1-core container) without
// hiding systematic cost. Within a round each mode warms up and keeps
// its lowest-p50 of three reps.
//
// Self-contained driver (no google-benchmark): emits BENCH_e9.json.
//
//   e9_observability [--quick] [--out PATH]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "obs/registry.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/workload.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace serve = navsep::serve;

constexpr std::size_t kShards = 4;

enum class Mode { Off, Sampled, Full };

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::Off: return "off";
    case Mode::Sampled: return "sampled";
    case Mode::Full: return "full";
  }
  return "unknown";
}

std::uint32_t sample_every(Mode mode) {
  return mode == Mode::Sampled ? 16u : 1u;
}

struct Cell {
  Mode mode = Mode::Off;
  std::size_t threads = 4;
  std::size_t paintings = 16;
};

struct Record {
  Cell cell;
  std::size_t steps_per_session = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  std::uint64_t epochs = 0;  ///< epochs published during the measured rep
  double seconds = 0.0;
  double rps = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t traces_recorded = 0;
  std::uint64_t traces_dropped = 0;
  std::uint64_t trace_events = 0;
  std::uint64_t spans_recorded = 0;
  double p50_overhead_vs_off = 0.0;  ///< median over rounds of
                                     ///< (p50 / same-round off p50) - 1
};

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 4,
                        .paintings_per_painter = paintings / 4 + 1,
                        .movements = 3,
                        .seed = 42})
                    .access(AccessStructureKind::IndexedGuidedTour)
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile(
      {"everything", {"ByAuthor", "ByMovement"}});
  return engine;
}

Record run_cell(const Cell& cell, std::size_t steps) {
  Record record;
  record.cell = cell;
  record.steps_per_session = steps;

  auto engine = museum_engine(cell.paintings);
  std::shared_ptr<obs::Registry> registry;
  obs::SamplerHandle metrics;
  auto server = engine->open_concurrent(kShards);
  if (cell.mode != Mode::Off) {
    registry = std::make_shared<obs::Registry>();
    engine->internals().attach_telemetry(registry);
    metrics = server->register_metrics(registry);
  }
  serve::Workload workload(*engine);  // before the churn writer starts

  serve::WorkloadOptions options;
  options.threads = cell.threads;
  options.steps_per_session = steps;
  options.behaviors = {serve::Behavior::RandomSurfer,
                       serve::Behavior::GuidedTour,
                       serve::Behavior::ContextSwitcher,
                       serve::Behavior::Kiosk, serve::Behavior::ProfileMix};
  if (cell.mode != Mode::Off) {
    options.trace = {.enabled = true,
                     .sample_every = sample_every(cell.mode),
                     .ring_capacity = 1024};
    options.telemetry = registry;
  }

  // Concurrent churn, the e4 idiom: the writer re-authors arc titles
  // (each edit publishes an epoch) until the sessions finish, so every
  // rep runs against a moving site. Family edits are deliberately NOT
  // used here — live NavigationSessions do not survive a concurrent
  // edit_context_family (the ROADMAP's snapshot-versioned-family item).
  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    std::size_t w = 0;
    while (!done.load(std::memory_order_acquire) && !arcs.empty()) {
      hm::AccessArc edited = arcs[w % arcs.size()];
      edited.title += " (rev " + std::to_string(w) + ")";
      (void)engine->internals().replace_arc(w % arcs.size(),
                                            std::move(edited));
      ++w;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Warmup (caches, allocator, branch predictors), then three measured
  // reps; keep the lowest-p50 one — noise is one-sided under a shared
  // scheduler, systematic telemetry cost is not.
  serve::WorkloadOptions warmup = options;
  warmup.steps_per_session = std::max<std::size_t>(steps / 4, 8);
  (void)workload.run(*server, warmup);

  bool have_best = false;
  serve::WorkloadResult best;
  std::uint64_t epochs_during_best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t epoch_before = engine->internals().snapshots().epoch();
    serve::WorkloadResult result = workload.run(*server, options);
    const std::uint64_t epoch_after = engine->internals().snapshots().epoch();
    if (!have_best ||
        result.latency.quantile_ns(0.5) < best.latency.quantile_ns(0.5)) {
      have_best = true;
      epochs_during_best = epoch_after - epoch_before;
      best = std::move(result);
    }
  }
  done.store(true, std::memory_order_release);
  writer.join();

  record.requests = best.requests;
  record.failures = best.failures;
  record.epochs = epochs_during_best;
  record.seconds = best.seconds;
  record.rps = best.throughput_rps;
  record.p50_ns = best.latency.quantile_ns(0.5);
  record.p99_ns = best.latency.quantile_ns(0.99);
  record.traces_recorded = best.traces.recorded;
  record.traces_dropped = best.traces.dropped;
  record.trace_events = best.traces.events;
  if (registry != nullptr) {
    record.spans_recorded = registry->snapshot().spans_recorded;
  }
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e9_observability\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char buffer[64];
    auto fixed = [&](double v) {
      std::snprintf(buffer, sizeof(buffer), "%.4f", v);
      return std::string(buffer);
    };
    out << "    {\n";
    out << "      \"telemetry\": \"" << to_string(r.cell.mode) << "\",\n";
    out << "      \"sample_every\": "
        << (r.cell.mode == Mode::Off ? 0 : sample_every(r.cell.mode))
        << ",\n";
    out << "      \"threads\": " << r.cell.threads << ",\n";
    out << "      \"paintings\": " << r.cell.paintings << ",\n";
    out << "      \"steps_per_session\": " << r.steps_per_session << ",\n";
    out << "      \"requests\": " << r.requests << ",\n";
    out << "      \"failures\": " << r.failures << ",\n";
    out << "      \"epochs\": " << r.epochs << ",\n";
    out << "      \"seconds\": " << fixed(r.seconds) << ",\n";
    out << "      \"rps\": " << fixed(r.rps) << ",\n";
    out << "      \"p50_ns\": " << r.p50_ns << ",\n";
    out << "      \"p99_ns\": " << r.p99_ns << ",\n";
    out << "      \"traces_recorded\": " << r.traces_recorded << ",\n";
    out << "      \"traces_dropped\": " << r.traces_dropped << ",\n";
    out << "      \"trace_events\": " << r.trace_events << ",\n";
    out << "      \"spans_recorded\": " << r.spans_recorded << ",\n";
    out << "      \"p50_overhead_vs_off\": " << fixed(r.p50_overhead_vs_off)
        << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e9.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e9_observability [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{8, 24};
  // Full reps must span many 2ms writer rotations, or "under churn"
  // would be vacuous (epochs == 0): 6144 steps/session keeps each
  // measured rep in the tens-of-milliseconds range.
  const std::size_t steps = quick ? 96 : 6144;
  const Mode modes[] = {Mode::Off, Mode::Sampled, Mode::Full};

  // Interleave the modes round-robin: within one round the three runs
  // see similar machine conditions, so each round yields a PAIRED
  // overhead ratio (mode p50 / that round's off p50), and the median
  // over rounds is robust to the scheduling drift that dominates a
  // shared 1-core container, where per-rep noise dwarfs a ~ns ring
  // store. The reported p50/p99 columns are each mode's lowest-p50
  // round (the noise floor); p50_overhead_vs_off is the median paired
  // ratio, which is why the two are not arithmetically consistent.
  const int rounds = quick ? 1 : 8;
  std::vector<Record> records;
  for (std::size_t threads : thread_counts) {
    for (std::size_t paintings : sizes) {
      Record best[3];
      bool have[3] = {false, false, false};
      std::vector<double> ratio[3];
      for (int round = 0; round < rounds; ++round) {
        std::uint64_t round_off_p50 = 0;
        for (int m = 0; m < 3; ++m) {
          Record r = run_cell(Cell{modes[m], threads, paintings}, steps);
          if (m == 0) {
            round_off_p50 = r.p50_ns;
          } else if (round_off_p50 > 0) {
            ratio[m].push_back(static_cast<double>(r.p50_ns) /
                               static_cast<double>(round_off_p50));
          }
          if (!have[m] || r.p50_ns < best[m].p50_ns) {
            have[m] = true;
            best[m] = std::move(r);
          }
        }
      }
      for (int m = 0; m < 3; ++m) {
        Record r = best[m];
        if (m > 0 && !ratio[m].empty()) {
          std::vector<double>& rs = ratio[m];
          std::sort(rs.begin(), rs.end());
          const std::size_t n = rs.size();
          const double median = n % 2 == 1
                                    ? rs[n / 2]
                                    : (rs[n / 2 - 1] + rs[n / 2]) / 2.0;
          r.p50_overhead_vs_off = median - 1.0;
        }
        std::printf(
            "telemetry=%-7s threads=%zu paintings=%-2zu -> p50 %6llu ns "
            "p99 %7llu ns  %9.0f rps  %6llu traces (%llu dropped)  "
            "epochs %llu  overhead %+.1f%%\n",
            to_string(r.cell.mode), r.cell.threads, r.cell.paintings,
            static_cast<unsigned long long>(r.p50_ns),
            static_cast<unsigned long long>(r.p99_ns), r.rps,
            static_cast<unsigned long long>(r.traces_recorded),
            static_cast<unsigned long long>(r.traces_dropped),
            static_cast<unsigned long long>(r.epochs),
            r.p50_overhead_vs_off * 100.0);
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return 0;
}

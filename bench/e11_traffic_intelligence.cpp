// E11 — traffic intelligence: landmark synthesis + predictive warming.
//
// Two questions, one driver. (1) Correctness gate: feeding a traced
// popularity table into nav::Engine::enable_landmarks must author a
// landmark access structure that is byte-identical to what a full
// single-threaded build producing the same ranked family would author
// — the incremental pipeline may not be a second dialect. (2) The
// economics of warming: every publication stales the base layer and
// retires the touched overlay slices, so the first organic requests
// after an epoch pay renders. A serve::CacheWarmer fed the same traced
// heat pre-renders those entries before traffic arrives; the
// experiment measures the cold-after-epoch window (the first W
// requests after each publication) with warming off vs on, over the
// same deterministic Zipf-skewed schedule, and reports hit ratios and
// latency quantiles per mode. Warming on must win both strictly:
// higher hit ratios in the window, lower p99.
//
// Self-contained driver (no google-benchmark): emits BENCH_e11.json.
//
//   e11_traffic_intelligence [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "obs/trace.hpp"
#include "serve/cache_warmer.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::Rng;
using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace serve = navsep::serve;
namespace site = navsep::site;

constexpr std::size_t kShards = 4;

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::vector<std::string> html_pages(const nav::Engine& engine) {
  std::vector<std::string> pages;
  for (const std::string& path : engine.site().paths()) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      pages.push_back(path);
    }
  }
  return pages;
}

/// The landmark byte-identity gate's ground truth, independent of the
/// incremental pipeline: a full single-threaded build handed every
/// authored family PLUS the engine's ranked landmark families (the
/// tests/oracle.cpp full-build oracle, restated — benches do not link
/// the gtest support library).
site::VirtualSite full_build_oracle(const nav::Engine& engine) {
  site::SiteBuildOptions options;
  options.site_base = engine.server().base();
  for (const auto& family : engine.context_families()) {
    options.context_families.push_back(&family);
  }
  std::vector<hm::ContextFamily> generated;
  for (const nav::RouteProgram& program : engine.routes()) {
    if (program.compile != nav::RouteCompile::Aot) continue;
    generated.push_back(engine.route_family(program.name));
  }
  for (const std::string& name : engine.landmark_families()) {
    generated.push_back(engine.landmark_family(name));
  }
  for (const auto& family : generated) {
    options.context_families.push_back(&family);
  }
  auto snapshot =
      hm::MaterializedStructure::snapshot(engine.structure());
  return site::build_separated_site(engine.world(), *snapshot, options);
}

void rotate_first_context(hm::ContextFamily& family) {
  std::vector<hm::NavigationalContext> contexts = family.contexts();
  if (contexts.empty() || contexts.front().size() < 2) return;
  std::vector<std::string> ids = contexts.front().node_ids();
  std::rotate(ids.begin(), ids.begin() + 1, ids.end());
  contexts.front() = hm::NavigationalContext(
      contexts.front().family(), contexts.front().name(), std::move(ids));
  family.replace_contexts(std::move(contexts));
}

/// The Zipf-skewed request schedule: page rank r appears ~1/(r+1) as
/// often as rank 0, deterministically shuffled. The same schedule
/// drives the tracing phase, the feed, and both measured windows.
std::vector<std::size_t> zipf_schedule(std::size_t pages, std::size_t length,
                                       Rng& rng) {
  std::vector<std::size_t> pool;
  for (std::size_t rank = 0; rank < pages; ++rank) {
    const std::size_t copies = std::max<std::size_t>(1, 24 / (rank + 1));
    for (std::size_t c = 0; c < copies; ++c) pool.push_back(rank);
  }
  std::vector<std::size_t> schedule;
  schedule.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    schedule.push_back(pool[static_cast<std::size_t>(rng.below(pool.size()))]);
  }
  return schedule;
}

struct WindowRecord {
  bool warming = false;
  std::size_t epochs = 0;
  std::size_t requests = 0;       ///< total requests across all windows
  double base_hit_ratio = 0.0;    ///< window-only, base layer
  double overlay_hit_ratio = 0.0; ///< window-only, overlay layer
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  serve::CacheWarmer::WarmStats warm;  // zeroed when warming == false
};

struct LandmarkRecord {
  std::size_t families = 0;
  std::size_t picks = 0;
  std::size_t artifacts = 0;        ///< links-landmarks*.xml files authored
  bool byte_identical = false;      ///< incremental == full-build oracle
};

std::uint64_t quantile(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const std::size_t at = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[at];
}

/// One measured mode: fresh engine + server, traced warm-up traffic,
/// then `epochs` publish→window cycles. With warming on, one
/// CacheWarmer cycle runs between the publication and the window —
/// the lane's steady state, made deterministic for measurement.
WindowRecord run_mode(bool warming, std::size_t paintings,
                      std::size_t epochs, std::size_t window,
                      const obs::TraceAggregate& traffic) {
  auto engine = museum_engine(paintings);
  const nav::Profile tour{"tour", {"ByAuthor"}};
  engine->internals().register_profile(tour);
  auto server = engine->open_concurrent(kShards);
  const std::vector<std::string> pages = html_pages(*engine);

  Rng rng(4242);
  const std::vector<std::size_t> schedule =
      zipf_schedule(pages.size(), window, rng);

  std::unique_ptr<serve::CacheWarmer> warmer;
  if (warming) {
    warmer = std::make_unique<serve::CacheWarmer>(
        *server,
        serve::CacheWarmer::Options{.top_n = pages.size() * 2});
    warmer->set_feed(traffic.top_entries(pages.size() * 2));
  }

  // Pre-window traffic so both modes enter the first epoch with the
  // same organically-earned cache population.
  for (std::size_t i = 0; i < window; ++i) {
    (void)server->get(pages[schedule[i]]);
    (void)server->get(pages[schedule[i]], tour.name);
  }

  WindowRecord record;
  record.warming = warming;
  record.epochs = epochs;
  std::vector<std::uint64_t> latencies;
  std::size_t base_hits = 0, base_requests = 0;
  std::size_t overlay_hits = 0, overlay_requests = 0;

  const std::vector<hm::Member> members = engine->structure().members();
  for (std::size_t e = 0; e < epochs; ++e) {
    // The publication: one retitle (stales the base layer, moves the
    // touched pages' overlay validity) + one tour rotation (moves the
    // ByAuthor slices).
    const hm::Member& victim = members[e % members.size()];
    (void)engine->internals().retitle_node(
        victim.node_id, victim.title + " e" + std::to_string(e));
    (void)engine->internals().edit_context_family("ByAuthor",
                                                  rotate_first_context);
    if (warming) (void)warmer->warm_now();

    // The cold-after-epoch window: the same skewed schedule, timed.
    const serve::ConcurrentServer::Stats pre = server->stats();
    for (std::size_t i = 0; i < window; ++i) {
      const std::string& page = pages[schedule[i]];
      const auto t0 = std::chrono::steady_clock::now();
      (void)server->get(page);
      (void)server->get(page, tour.name);
      const auto t1 = std::chrono::steady_clock::now();
      latencies.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      record.requests += 2;
    }
    const serve::ConcurrentServer::Stats post = server->stats();
    base_hits += post.cache_hits - pre.cache_hits;
    base_requests += post.requests - pre.requests;
    overlay_hits += post.overlay_hits - pre.overlay_hits;
    overlay_requests += post.overlay_requests - pre.overlay_requests;
  }

  std::sort(latencies.begin(), latencies.end());
  record.p50_ns = quantile(latencies, 0.50);
  record.p99_ns = quantile(latencies, 0.99);
  record.base_hit_ratio =
      base_requests == 0
          ? 0.0
          : static_cast<double>(base_hits) / static_cast<double>(base_requests);
  record.overlay_hit_ratio = overlay_requests == 0
                                 ? 0.0
                                 : static_cast<double>(overlay_hits) /
                                       static_cast<double>(overlay_requests);
  if (warming) record.warm = warmer->stats();
  return record;
}

/// The tracing phase: drive the schedule once through a throwaway
/// server, folding what was requested into the popularity tables the
/// landmark scorer and the warmer both consume.
obs::TraceAggregate trace_traffic(std::size_t paintings, std::size_t steps) {
  auto engine = museum_engine(paintings);
  const nav::Profile tour{"tour", {"ByAuthor"}};
  engine->internals().register_profile(tour);
  auto server = engine->open_concurrent(kShards);
  const std::vector<std::string> pages = html_pages(*engine);

  Rng rng(4242);
  const std::vector<std::size_t> schedule =
      zipf_schedule(pages.size(), steps, rng);
  obs::TraceAggregate traffic;
  for (std::size_t rank : schedule) {
    const std::string& page = pages[rank];
    if (server->get(page).ok()) {
      ++traffic.page_views[page];
      ++traffic.events;
    }
    if (server->get(page, tour.name).ok()) {
      ++traffic.page_views[page];
      ++traffic.profile_page_views[{tour.name, page}];
      ++traffic.events;
    }
  }
  return traffic;
}

/// The landmark gate: enable synthesis from the traced traffic, then
/// demand byte identity between the incremental site (which authored
/// links-landmarks*.xml through the build graph) and the from-scratch
/// oracle handed the same ranked families.
LandmarkRecord landmark_gate(std::size_t paintings,
                             const obs::TraceAggregate& traffic) {
  auto engine = museum_engine(paintings);
  const nav::Profile tour{"tour", {"ByAuthor"}};
  engine->internals().register_profile(tour);
  (void)engine->internals().enable_landmarks(
      traffic, {.top_k = 4, .per_profile = true});

  LandmarkRecord record;
  for (const std::string& name : engine->internals().landmark_families()) {
    ++record.families;
    record.picks += engine->internals().landmark_picks(name).size();
  }
  const site::VirtualSite oracle = full_build_oracle(*engine);
  record.byte_identical = engine->site().paths() == oracle.paths();
  for (const std::string& path : engine->site().paths()) {
    if (path.rfind("links-landmarks", 0) == 0) ++record.artifacts;
    const std::string* got = engine->site().get(path);
    const std::string* want = oracle.get(path);
    if (got == nullptr || want == nullptr || *got != *want) {
      record.byte_identical = false;
    }
  }
  return record;
}

void emit_json(const LandmarkRecord& landmarks,
               const std::vector<WindowRecord>& runs, std::ostream& out) {
  char buffer[64];
  const auto ratio = [&](double v) {
    std::snprintf(buffer, sizeof(buffer), "%.4f", v);
    return std::string(buffer);
  };
  out << "{\n  \"bench\": \"e11_traffic_intelligence\",\n";
  out << "  \"landmarks\": {\n";
  out << "    \"families\": " << landmarks.families << ",\n";
  out << "    \"picks\": " << landmarks.picks << ",\n";
  out << "    \"artifacts\": " << landmarks.artifacts << ",\n";
  out << "    \"byte_identical\": "
      << (landmarks.byte_identical ? "true" : "false") << "\n  },\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const WindowRecord& r = runs[i];
    out << "    {\n";
    out << "      \"warming\": " << (r.warming ? "true" : "false") << ",\n";
    out << "      \"epochs\": " << r.epochs << ",\n";
    out << "      \"window_requests\": " << r.requests << ",\n";
    out << "      \"base_hit_ratio\": " << ratio(r.base_hit_ratio) << ",\n";
    out << "      \"overlay_hit_ratio\": " << ratio(r.overlay_hit_ratio)
        << ",\n";
    out << "      \"p50_ns\": " << r.p50_ns << ",\n";
    out << "      \"p99_ns\": " << r.p99_ns << ",\n";
    out << "      \"warm_attempted\": " << r.warm.attempted << ",\n";
    out << "      \"warm_warmed\": " << r.warm.warmed << ",\n";
    out << "      \"warm_already_hot\": " << r.warm.already_hot << ",\n";
    out << "      \"warm_no_room\": " << r.warm.no_room << "\n";
    out << "    }" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (runs.size() == 2) {
    out << ",\n  \"delta\": {\n";
    out << "    \"overlay_hit_ratio_gain\": "
        << ratio(runs[1].overlay_hit_ratio - runs[0].overlay_hit_ratio)
        << ",\n";
    out << "    \"base_hit_ratio_gain\": "
        << ratio(runs[1].base_hit_ratio - runs[0].base_hit_ratio) << ",\n";
    out << "    \"p99_speedup\": "
        << ratio(runs[1].p99_ns == 0
                     ? 0.0
                     : static_cast<double>(runs[0].p99_ns) /
                           static_cast<double>(runs[1].p99_ns))
        << "\n  }";
  }
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e11.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e11_traffic_intelligence [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::size_t paintings = quick ? 8 : 24;
  const std::size_t trace_steps = quick ? 200 : 2000;
  const std::size_t epochs = quick ? 4 : 16;
  const std::size_t window = quick ? 60 : 200;

  const obs::TraceAggregate traffic = trace_traffic(paintings, trace_steps);

  const LandmarkRecord landmarks = landmark_gate(paintings, traffic);
  std::printf("landmarks: %zu families, %zu picks, %zu artifacts, "
              "byte-identical=%s\n",
              landmarks.families, landmarks.picks, landmarks.artifacts,
              landmarks.byte_identical ? "yes" : "NO");
  if (!landmarks.byte_identical || landmarks.artifacts == 0) {
    std::cerr << "e11: landmark byte-identity gate FAILED\n";
    return 1;
  }

  std::vector<WindowRecord> runs;
  for (const bool warming : {false, true}) {
    WindowRecord r = run_mode(warming, paintings, epochs, window, traffic);
    std::printf(
        "warming=%s -> window base hit %.3f, overlay hit %.3f, "
        "p50 %llu ns, p99 %llu ns (warmed %llu/%llu)\n",
        warming ? "on " : "off", r.base_hit_ratio, r.overlay_hit_ratio,
        static_cast<unsigned long long>(r.p50_ns),
        static_cast<unsigned long long>(r.p99_ns),
        static_cast<unsigned long long>(r.warm.warmed),
        static_cast<unsigned long long>(r.warm.attempted));
    runs.push_back(std::move(r));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(landmarks, runs, out);
  std::cout << "wrote " << out_path << " (" << runs.size()
            << " runs + landmark gate)\n";
  return 0;
}

// S5 — XSLT substrate soundness: the presentation transform of the
// separated pipeline (data XML → content HTML).
#include <benchmark/benchmark.h>

#include "museum/museum.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xslt/xslt.hpp"

namespace {

using navsep::museum::MuseumWorld;

void BM_CompileStylesheet(benchmark::State& state) {
  std::string text = MuseumWorld::presentation_xslt();
  for (auto _ : state) {
    auto sheet = navsep::xslt::Stylesheet::compile_text(text);
    benchmark::DoNotOptimize(sheet);
  }
}

void BM_TransformPainterDoc(benchmark::State& state) {
  auto world = MuseumWorld::synthetic(
      {.painters = 1,
       .paintings_per_painter = static_cast<std::size_t>(state.range(0)),
       .movements = 2,
       .seed = 4});
  auto sheet =
      navsep::xslt::Stylesheet::compile_text(MuseumWorld::presentation_xslt());
  auto input = world->painter_document("painter-0");
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto out = sheet.transform(*input);
    std::string html = navsep::xml::write(*out, {.declaration = false});
    bytes = html.size();
    benchmark::DoNotOptimize(html);
  }
  state.counters["html_bytes"] = static_cast<double>(bytes);
}

void BM_TransformEveryPainting(benchmark::State& state) {
  auto world = MuseumWorld::synthetic(
      {.painters = static_cast<std::size_t>(state.range(0)),
       .paintings_per_painter = 5,
       .movements = 2,
       .seed = 4});
  auto sheet =
      navsep::xslt::Stylesheet::compile_text(MuseumWorld::presentation_xslt());
  std::vector<std::unique_ptr<navsep::xml::Document>> inputs;
  for (const std::string& id : world->painting_ids()) {
    inputs.push_back(world->painting_document(id));
  }
  std::size_t pages = 0;
  for (auto _ : state) {
    pages = 0;
    for (const auto& input : inputs) {
      auto out = sheet.transform(*input);
      if (out->root() != nullptr) ++pages;
      benchmark::DoNotOptimize(out);
    }
  }
  state.counters["pages"] = static_cast<double>(pages);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inputs.size()));
}

}  // namespace

BENCHMARK(BM_CompileStylesheet);
BENCHMARK(BM_TransformPainterDoc)->Arg(3)->Arg(30)->Arg(100);
BENCHMARK(BM_TransformEveryPainting)->Arg(3)->Arg(10);

// E8 — parallel, batched rebuild economics: what the worker-pool weave
// and mutation coalescing buy on a live engine.
//
// The paper's change request (§5) is an edit burst against the
// navigation design; PR 7 gives the engine two levers for absorbing
// one: page re-weaves schedule onto a shared worker pool (deterministic
// — output is byte-identical for every lane count), and an edit burst
// can batch through begin_batch()/commit_batch() into one plan, one
// dirty-propagation pass, one re-weave and exactly one published epoch.
// The sweep crosses worker lanes × batch size × museum size. Per cell a
// scripted mixed edit stream (retitles, arc edits, kind swaps, family
// rotations) runs against the engine; reported per cell:
//
//   - edits/sec over the whole stream (the headline throughput);
//   - publish latency: wall time of each commit (the window in which
//     the burst becomes one visible epoch) — mean and max, ms;
//   - epochs published (batch size K must divide the epoch count by K);
//   - the engine's own weave counters (weave_workers,
//     max_parallel_weaves) from the RebuildReport;
//   - a byte-identity verdict against a serial (1-lane, unbatched)
//     engine fed the identical stream — a throughput number from a
//     diverged site would be worthless. The serial run also provides
//     the baseline edits/sec the speedup column divides by.
//
// NOTE: in a single-core container the lane sweep measures overhead,
// not speedup — the determinism verdicts still hold, which is the point
// of running it there; see docs/BENCHMARKS.md.
//
// Self-contained driver (no google-benchmark): emits BENCH_e8.json.
//
//   e8_parallel_rebuild [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
using Clock = std::chrono::steady_clock;

struct Cell {
  std::size_t workers = 1;   ///< weave lanes (1 = serial path)
  std::size_t batch = 1;     ///< edits per begin/commit (1 = unbatched)
  std::size_t paintings = 12;
  std::size_t edits = 48;
};

struct Record {
  Cell cell;
  double edits_per_sec = 0;
  double serial_edits_per_sec = 0;  ///< 1-lane unbatched baseline
  double commit_mean_ms = 0;        ///< publish latency per commit
  double commit_max_ms = 0;
  std::size_t epochs_published = 0;
  std::size_t weave_workers = 0;       ///< as reported by the engine
  std::size_t max_parallel_weaves = 0; ///< widest wave seen
  bool byte_identical = true;          ///< vs the serial baseline site
};

std::unique_ptr<nav::Engine> make_engine(std::size_t paintings,
                                         std::size_t workers) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .weave_workers(workers)
      .serve();
}

/// One deterministic mixed edit, the same for every engine in a cell.
void mutate(nav::Engine& engine, std::size_t step) {
  switch (step % 4) {
    case 0: {
      const auto& members = engine.structure().members();
      (void)engine.internals().retitle_node(
          members[step % members.size()].node_id,
          "e8-title-" + std::to_string(step));
      break;
    }
    case 1: {
      std::vector<hm::AccessArc> arcs = engine.internals().authored_arcs();
      if (arcs.empty()) break;
      hm::AccessArc edited = arcs[step % arcs.size()];
      edited.title = "e8-arc-" + std::to_string(step);
      (void)engine.internals().replace_arc(step % arcs.size(),
                                           std::move(edited));
      break;
    }
    case 2:
      (void)engine.internals().set_access_structure(
          step % 8 == 2 ? AccessStructureKind::GuidedTour
                        : AccessStructureKind::IndexedGuidedTour);
      break;
    default:
      (void)engine.internals().edit_context_family(
          "ByAuthor", [step](hm::ContextFamily& family) {
            std::vector<hm::NavigationalContext> contexts = family.contexts();
            if (contexts.empty() || contexts.front().size() < 2) return;
            std::vector<std::string> ids = contexts.front().node_ids();
            std::rotate(ids.begin(), ids.begin() + 1 + (step % (ids.size() - 1)),
                        ids.end());
            contexts.front() = hm::NavigationalContext(
                contexts.front().family(), contexts.front().name(),
                std::move(ids));
            family.replace_contexts(std::move(contexts));
          });
      break;
  }
}

/// Run the edit stream; returns total seconds and fills commit timings.
double run_stream(nav::Engine& engine, const Cell& cell, Record* record) {
  double commit_ms_total = 0;
  std::size_t commits = 0;
  const auto run0 = Clock::now();
  for (std::size_t step = 0; step < cell.edits;) {
    const std::size_t burst = std::min(cell.batch, cell.edits - step);
    if (burst > 1) engine.internals().begin_batch();
    for (std::size_t k = 0; k < burst; ++k) mutate(engine, step + k);
    const auto c0 = Clock::now();
    nav::RebuildReport report;
    if (burst > 1) {
      report = engine.internals().commit_batch();
    }
    // Unbatched: every mutation above already ran + published; the
    // "commit window" is the mutation itself, folded into the total.
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - c0).count();
    if (burst > 1 && record != nullptr) {
      commit_ms_total += ms;
      ++commits;
      record->commit_max_ms = std::max(record->commit_max_ms, ms);
      record->weave_workers =
          std::max(record->weave_workers, report.weave_workers);
      record->max_parallel_weaves =
          std::max(record->max_parallel_weaves, report.max_parallel_weaves);
    }
    step += burst;
  }
  const double total_s =
      std::chrono::duration<double>(Clock::now() - run0).count();
  if (record != nullptr && commits > 0) {
    record->commit_mean_ms = commit_ms_total / static_cast<double>(commits);
  }
  return total_s;
}

Record run_cell(const Cell& cell) {
  Record record;
  record.cell = cell;

  // The serial baseline: 1 lane, unbatched, identical stream.
  auto serial = make_engine(cell.paintings, 1);
  Cell serial_cell = cell;
  serial_cell.workers = 1;
  serial_cell.batch = 1;
  const double serial_s = run_stream(*serial, serial_cell, nullptr);
  record.serial_edits_per_sec =
      serial_s > 0 ? static_cast<double>(cell.edits) / serial_s : 0;

  // The cell under measurement.
  auto engine = make_engine(cell.paintings, cell.workers);
  const std::uint64_t epoch0 = engine->internals().snapshots().epoch();
  const double total_s = run_stream(*engine, cell, &record);
  record.edits_per_sec =
      total_s > 0 ? static_cast<double>(cell.edits) / total_s : 0;
  record.epochs_published =
      static_cast<std::size_t>(engine->internals().snapshots().epoch() -
                               epoch0);
  if (cell.batch == 1) {
    // Unbatched cells report the per-mutation weave shape instead: a
    // kind swap that re-weaves every page (mirrored on the baseline so
    // the byte-identity verdict still compares equal states).
    nav::RebuildReport probe = engine->internals().set_access_structure(
        AccessStructureKind::GuidedTour);
    record.weave_workers = probe.weave_workers;
    record.max_parallel_weaves = probe.max_parallel_weaves;
    (void)serial->internals().set_access_structure(
        AccessStructureKind::GuidedTour);
    ++record.epochs_published;
  }

  // Verdict: the final site must equal the serial baseline's, byte for
  // byte (worker-count independence + batching correctness in one).
  std::vector<std::pair<std::string, std::string>> mine =
      engine->site().artifacts();
  std::vector<std::pair<std::string, std::string>> theirs =
      serial->site().artifacts();
  record.byte_identical = mine == theirs;
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e8_parallel_rebuild\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char buffer[64];
    auto f = [&](double v) {
      std::snprintf(buffer, sizeof(buffer), "%.2f", v);
      return std::string(buffer);
    };
    out << "    {\n";
    out << "      \"workers\": " << r.cell.workers << ",\n";
    out << "      \"batch\": " << r.cell.batch << ",\n";
    out << "      \"paintings\": " << r.cell.paintings << ",\n";
    out << "      \"edits\": " << r.cell.edits << ",\n";
    out << "      \"edits_per_sec\": " << f(r.edits_per_sec) << ",\n";
    out << "      \"serial_edits_per_sec\": " << f(r.serial_edits_per_sec)
        << ",\n";
    out << "      \"commit_mean_ms\": " << f(r.commit_mean_ms) << ",\n";
    out << "      \"commit_max_ms\": " << f(r.commit_max_ms) << ",\n";
    out << "      \"epochs_published\": " << r.epochs_published << ",\n";
    out << "      \"weave_workers\": " << r.weave_workers << ",\n";
    out << "      \"max_parallel_weaves\": " << r.max_parallel_weaves
        << ",\n";
    out << "      \"byte_identical\": "
        << (r.byte_identical ? "true" : "false") << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e8.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e8_parallel_rebuild [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> worker_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 8}
            : std::vector<std::size_t>{1, 4, 16};
  const std::vector<std::size_t> museum_sizes =
      quick ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{12, 48};
  const std::size_t edits = quick ? 16 : 48;

  std::vector<Record> records;
  bool all_identical = true;
  for (std::size_t paintings : museum_sizes) {
    for (std::size_t workers : worker_counts) {
      for (std::size_t batch : batch_sizes) {
        Record r = run_cell(Cell{workers, batch, paintings, edits});
        std::printf(
            "workers=%zu batch=%-2zu paintings=%-2zu -> %.0f edits/s "
            "(serial %.0f), commit mean %.2f ms max %.2f ms, "
            "%zu epochs, wave<=%zu, %s\n",
            r.cell.workers, r.cell.batch, r.cell.paintings, r.edits_per_sec,
            r.serial_edits_per_sec, r.commit_mean_ms, r.commit_max_ms,
            r.epochs_published, r.max_parallel_weaves,
            r.byte_identical ? "byte-identical" : "DIVERGED");
        all_identical = all_identical && r.byte_identical;
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return all_identical ? 0 : 1;
}

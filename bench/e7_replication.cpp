// E7 — replication economics: what shipping epochs to a read fleet
// costs, and what the slice-hash-driven deltas save.
//
// The paper's separation prices this experiment's headline: navigation
// edits move linkbase-sized deltas, never the site. The sweep crosses
// replica count × edit kind × edit pacing. Per cell a real origin
// engine publishes over loopback TCP to N in-process repl::Replicas
// while a scripted mutation sequence runs; reported per cell:
//
//   - wire economics: DELTA frames/bytes vs FULL frames/bytes from the
//     publisher, plus the size one FULL of the final snapshot would be
//     (the "what a naive ship-the-site design pays per epoch" baseline);
//   - apply latency: wire-level encode_delta/apply_delta timings per
//     epoch, measured in-process (mean + max, microseconds);
//   - epoch lag: how long after the last mutation the slowest replica
//     reaches the origin's epoch (convergence, milliseconds);
//   - a byte-identity verdict over every artifact of every replica —
//     an economics number from a diverged replica would be worthless.
//
// Self-contained driver (no google-benchmark): emits BENCH_e7.json.
//
//   e7_replication [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "repl/wire.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
using Clock = std::chrono::steady_clock;

struct Cell {
  std::size_t replicas = 1;
  std::string edit_kind;        ///< "family" | "title" | "mixed"
  std::size_t interval_us = 0;  ///< pause between edits (0 = burst)
  std::size_t epochs = 16;
};

struct Record {
  Cell cell;
  repl::Publisher::Stats publisher;
  std::size_t full_snapshot_bytes = 0;  ///< encode_full of the end state
  // Wire-level per-epoch measurements (in-process, deterministic).
  double encode_delta_mean_us = 0;
  double apply_delta_mean_us = 0;
  double apply_delta_max_us = 0;
  double avg_delta_bytes = 0;
  double convergence_ms = 0;  ///< slowest replica, after the last edit
  bool byte_identical = true;
};

std::unique_ptr<nav::Engine> make_engine(std::size_t paintings) {
  auto engine =
      nav::SitePipeline()
          .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                    .paintings_per_painter =
                                                        paintings / 4 + 1,
                                                    .movements = 3,
                                                    .seed = 42})
          .access(AccessStructureKind::IndexedGuidedTour)
          .contexts({"ByAuthor", "ByMovement"})
          .weave()
          .serve();
  engine->internals().register_profile({"kiosk", {}});
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile(
      {"everything", {"ByAuthor", "ByMovement"}});
  return engine;
}

void rotate_family(nav::Engine& engine, const std::string& family_name) {
  (void)engine.internals().edit_context_family(
      family_name, [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        if (contexts.empty() || contexts.front().size() < 2) return;
        std::vector<std::string> ids = contexts.front().node_ids();
        std::rotate(ids.begin(), ids.begin() + 1, ids.end());
        contexts.front() = hm::NavigationalContext(contexts.front().family(),
                                                   contexts.front().name(),
                                                   std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
}

void mutate(nav::Engine& engine, const std::string& kind, std::size_t step) {
  if (kind == "family") {
    rotate_family(engine, "ByAuthor");
  } else if (kind == "title") {
    const auto& members = engine.structure().members();
    (void)engine.internals().retitle_node(
        members[step % members.size()].node_id,
        "e7-title-" + std::to_string(step));
  } else {  // mixed
    switch (step % 3) {
      case 0:
        rotate_family(engine, step % 2 == 0 ? "ByAuthor" : "ByMovement");
        break;
      case 1: {
        const auto& members = engine.structure().members();
        (void)engine.internals().retitle_node(
            members[step % members.size()].node_id,
            "e7-title-" + std::to_string(step));
        break;
      }
      default: {
        std::vector<hm::AccessArc> arcs = engine.internals().authored_arcs();
        if (arcs.empty()) break;
        hm::AccessArc edited = arcs[step % arcs.size()];
        edited.title = "e7-arc-" + std::to_string(step);
        (void)engine.internals().replace_arc(step % arcs.size(),
                                             std::move(edited));
        break;
      }
    }
  }
}

Record run_cell(const Cell& cell, std::size_t paintings) {
  Record record;
  record.cell = cell;

  auto engine = make_engine(paintings);
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));
  std::vector<std::unique_ptr<repl::Replica>> replicas;
  for (std::size_t i = 0; i < cell.replicas; ++i) {
    replicas.push_back(std::make_unique<repl::Replica>(
        repl::Connection::connect(publisher->endpoint())));
    replicas.back()->start();
  }

  // The mutation run. Alongside the socketed stream, measure the wire
  // costs per epoch in-process: encode_delta and apply_delta between
  // consecutive snapshots (what each subscriber thread pays per frame).
  double encode_us_total = 0, apply_us_total = 0, delta_bytes_total = 0;
  auto prev = engine->internals().snapshots().current();
  for (std::size_t step = 0; step < cell.epochs; ++step) {
    mutate(*engine, cell.edit_kind, step);
    auto next = engine->internals().snapshots().current();

    const auto t0 = Clock::now();
    const std::string delta = repl::encode_delta(*prev, *next);
    const auto t1 = Clock::now();
    auto applied = repl::apply_delta(delta, *prev);
    const auto t2 = Clock::now();
    encode_us_total +=
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double apply_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count();
    apply_us_total += apply_us;
    record.apply_delta_max_us = std::max(record.apply_delta_max_us, apply_us);
    delta_bytes_total += static_cast<double>(delta.size());
    prev = std::move(next);

    if (cell.interval_us != 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cell.interval_us));
    }
  }
  record.encode_delta_mean_us =
      encode_us_total / static_cast<double>(cell.epochs);
  record.apply_delta_mean_us =
      apply_us_total / static_cast<double>(cell.epochs);
  record.avg_delta_bytes =
      delta_bytes_total / static_cast<double>(cell.epochs);

  // Convergence: the slowest replica's distance from the final epoch.
  const std::uint64_t target = engine->internals().snapshots().epoch();
  const auto settle0 = Clock::now();
  for (auto& replica : replicas) {
    if (!replica->wait_for_epoch(target, std::chrono::seconds(60))) {
      record.byte_identical = false;  // never converged
    }
  }
  record.convergence_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - settle0)
          .count();

  // Verdict: every replica serves exactly the origin's artifact bytes.
  auto origin_snap = engine->internals().snapshots().current();
  for (auto& replica : replicas) {
    auto snap = replica->store().current();
    if (snap == nullptr || snap->files().size() != origin_snap->files().size()) {
      record.byte_identical = false;
      continue;
    }
    for (const auto& [path, bytes] : origin_snap->files()) {
      auto it = snap->files().find(path);
      if (it == snap->files().end() || *it->second != *bytes) {
        record.byte_identical = false;
        break;
      }
    }
  }

  record.full_snapshot_bytes = repl::encode_full(*origin_snap).size();
  record.publisher = publisher->stats();
  for (auto& replica : replicas) replica->stop();
  publisher->stop();
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e7_replication\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char buffer[64];
    auto f = [&](double v) {
      std::snprintf(buffer, sizeof(buffer), "%.2f", v);
      return std::string(buffer);
    };
    out << "    {\n";
    out << "      \"replicas\": " << r.cell.replicas << ",\n";
    out << "      \"edit_kind\": \"" << r.cell.edit_kind << "\",\n";
    out << "      \"interval_us\": " << r.cell.interval_us << ",\n";
    out << "      \"epochs\": " << r.cell.epochs << ",\n";
    out << "      \"full_snapshot_bytes\": " << r.full_snapshot_bytes
        << ",\n";
    out << "      \"avg_delta_bytes\": " << f(r.avg_delta_bytes) << ",\n";
    out << "      \"encode_delta_mean_us\": " << f(r.encode_delta_mean_us)
        << ",\n";
    out << "      \"apply_delta_mean_us\": " << f(r.apply_delta_mean_us)
        << ",\n";
    out << "      \"apply_delta_max_us\": " << f(r.apply_delta_max_us)
        << ",\n";
    out << "      \"wire_full_frames\": " << r.publisher.full_frames << ",\n";
    out << "      \"wire_full_bytes\": " << r.publisher.full_bytes << ",\n";
    out << "      \"wire_delta_frames\": " << r.publisher.delta_frames
        << ",\n";
    out << "      \"wire_delta_bytes\": " << r.publisher.delta_bytes << ",\n";
    out << "      \"wire_resync_fulls\": " << r.publisher.resync_fulls
        << ",\n";
    out << "      \"convergence_ms\": " << f(r.convergence_ms) << ",\n";
    out << "      \"byte_identical\": "
        << (r.byte_identical ? "true" : "false") << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e7.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e7_replication [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> replica_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2, 4};
  const std::vector<std::string> edit_kinds =
      quick ? std::vector<std::string>{"family", "mixed"}
            : std::vector<std::string>{"family", "title", "mixed"};
  const std::vector<std::size_t> intervals_us =
      quick ? std::vector<std::size_t>{0}
            : std::vector<std::size_t>{0, 2000};
  const std::size_t epochs = quick ? 8 : 24;
  const std::size_t paintings = quick ? 8 : 24;

  std::vector<Record> records;
  bool all_identical = true;
  for (std::size_t replicas : replica_counts) {
    for (const std::string& kind : edit_kinds) {
      for (std::size_t interval : intervals_us) {
        Record r = run_cell(Cell{replicas, kind, interval, epochs},
                            paintings);
        std::printf(
            "replicas=%zu kind=%-6s interval=%zuus -> delta avg %.0f B "
            "(full %zu B, x%.1f smaller), apply %.0f us, converge %.1f ms, "
            "%s\n",
            r.cell.replicas, r.cell.edit_kind.c_str(), r.cell.interval_us,
            r.avg_delta_bytes, r.full_snapshot_bytes,
            r.avg_delta_bytes == 0
                ? 0.0
                : static_cast<double>(r.full_snapshot_bytes) /
                      r.avg_delta_bytes,
            r.apply_delta_mean_us, r.convergence_ms,
            r.byte_identical ? "byte-identical" : "DIVERGED");
        all_identical = all_identical && r.byte_identical;
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return all_identical ? 0 : 1;
}

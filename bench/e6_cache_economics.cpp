// E6 — cache economics of the bounded, slice-validated serve layers.
//
// E5 showed profiles multiply the overlay space while base pages stay
// woven once; this experiment prices the cache that makes that fast.
// The sweep crosses cap-per-shard × registered profiles × edit rate:
// a deterministic single-threaded driver issues base and profile-scoped
// GETs over random (page, profile) pairs through a
// serve::ConcurrentServer opened with serve::CacheLimits, while
// edit_context_family fires at the configured rate. Reported per cell:
// hit ratios and the residency ledger (inserted == resident + evicted)
// of BOTH layers — bounded caches must hold ≤ cap × shards entries no
// matter the churn.
//
// After the traffic run the driver warms every (profile, page) pair,
// performs ONE family edit touching a single context, and re-probes
// every pair, classifying each page as touched (its served bytes
// changed) or untouched. The asymmetry the slice-precise validity buys:
// untouched pairs are retained (hits) and touched pairs are retired
// (stale re-renders) — under a tight cap, retention additionally decays
// to whatever the LRU kept, which is the economics the sweep exposes.
//
// Self-contained driver (no google-benchmark): emits BENCH_e6.json.
//
//   e6_cache_economics [--quick] [--out PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::Rng;
using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;

constexpr std::size_t kShards = 4;

struct Cell {
  std::size_t cap = serve::CacheLimits::kUnbounded;  ///< per shard, both layers
  std::size_t profiles = 2;
  std::size_t edits_per_1k = 0;  ///< family edits per 1000 traffic steps
  std::size_t paintings = 16;
};

struct Record {
  Cell cell;
  std::size_t requests = 0;
  serve::ConcurrentServer::Stats after_traffic;
  // The one-edit asymmetry probe over every (profile, page) pair.
  std::size_t pairs = 0;
  std::size_t touched_pairs = 0;  ///< pairs whose served bytes the edit changed
  std::size_t touched_retired = 0;     ///< touched pairs re-rendered as stale
  std::size_t touched_retained = 0;    ///< touched pairs wrongly kept (must be 0)
  std::size_t untouched_retained = 0;  ///< untouched pairs still hitting
  std::size_t untouched_rendered = 0;  ///< untouched pairs lost (evicted/stale)
  std::size_t edit_pages_rewoven = 0;
  std::size_t edit_linkbases_reauthored = 0;
};

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::vector<nav::Profile> register_profiles(nav::Engine& engine,
                                            std::size_t count) {
  static const std::vector<std::vector<std::string>> kSubsets{
      {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"}, {}};
  std::vector<nav::Profile> out;
  for (std::size_t i = 0; i < count; ++i) {
    nav::Profile profile{"profile-" + std::to_string(i),
                         kSubsets[i % kSubsets.size()]};
    engine.internals().register_profile(profile);
    out.push_back(std::move(profile));
  }
  return out;
}

/// Post-edit ground truth for the asymmetry probe, independent of the
/// serving path under test: a full single-threaded build weaving only
/// `profile`'s families, as path -> bytes (the tests/oracle.cpp oracle,
/// restated here — benches do not link the gtest support library).
std::map<std::string, std::string> profile_oracle(const nav::Engine& engine,
                                                  const nav::Profile& profile) {
  site::SiteBuildOptions options;
  options.site_base = engine.server().base();
  options.weave_context_tours = true;
  for (const std::string& name : profile.families) {
    for (const hm::ContextFamily& family : engine.context_families()) {
      if (family.name() == name) options.context_families.push_back(&family);
    }
  }
  site::VirtualSite built =
      site::build_separated_site(engine.world(), engine.structure(), options);
  std::map<std::string, std::string> out;
  for (auto& [path, content] : built.artifacts()) out.emplace(path, content);
  return out;
}

void rotate_first_context(hm::ContextFamily& family) {
  std::vector<hm::NavigationalContext> contexts = family.contexts();
  if (contexts.empty() || contexts.front().size() < 2) return;
  std::vector<std::string> ids = contexts.front().node_ids();
  std::rotate(ids.begin(), ids.begin() + 1, ids.end());
  contexts.front() = hm::NavigationalContext(
      contexts.front().family(), contexts.front().name(), std::move(ids));
  family.replace_contexts(std::move(contexts));
}

Record run_cell(const Cell& cell, std::size_t steps) {
  Record record;
  record.cell = cell;

  auto engine = museum_engine(cell.paintings);
  const std::vector<nav::Profile> profiles =
      register_profiles(*engine, cell.profiles);
  auto server = engine->open_concurrent(
      kShards, serve::CacheLimits{.base_entries_per_shard = cell.cap,
                                  .overlay_entries_per_shard = cell.cap});

  std::vector<std::string> pages;
  for (const std::string& path : engine->site().paths()) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      pages.push_back(path);
    }
  }

  // Traffic: random (page, profile) pairs, base + overlay GET per step,
  // family edits interleaved at the configured rate.
  const std::size_t edit_every =
      cell.edits_per_1k == 0 ? 0 : std::max<std::size_t>(1000 / cell.edits_per_1k, 1);
  Rng rng(7 + cell.cap + cell.profiles * 131 + cell.edits_per_1k * 17);
  for (std::size_t step = 0; step < steps; ++step) {
    if (edit_every != 0 && step % edit_every == edit_every - 1) {
      (void)engine->internals().edit_context_family("ByAuthor",
                                                    rotate_first_context);
    }
    const std::string& page = rng.pick(pages);
    (void)server->get(page);
    (void)server->get(page, rng.pick(profiles).name);
    record.requests += 2;
  }
  record.after_traffic = server->stats();

  // The asymmetry probe: warm every pair, capture its bytes, edit once,
  // re-probe pair by pair classifying outcome via counter deltas.
  std::map<std::string, std::string> before;  // "profile\npage" → bytes
  for (const nav::Profile& profile : profiles) {
    for (const std::string& page : pages) {
      site::Response r = server->get(page, profile.name);
      if (r.ok()) before.emplace(profile.name + '\n' + page, *r.body);
    }
  }
  nav::RebuildReport report = engine->internals().edit_context_family(
      "ByAuthor", rotate_first_context);
  record.edit_pages_rewoven = report.pages_rewoven;
  record.edit_linkbases_reauthored = report.linkbases_reauthored;

  for (const nav::Profile& profile : profiles) {
    // Touched-ness comes from the post-edit ORACLE, not from the served
    // bytes — so a validity bug that wrongly keeps a stale entry alive
    // shows up as touched_retained > 0 instead of masking itself.
    const std::map<std::string, std::string> oracle =
        profile_oracle(*engine, profile);
    for (const std::string& page : pages) {
      const serve::ConcurrentServer::Stats pre = server->stats();
      site::Response r = server->get(page, profile.name);
      if (!r.ok()) continue;
      const serve::ConcurrentServer::Stats post = server->stats();
      ++record.pairs;
      const bool touched = before.at(profile.name + '\n' + page) != oracle.at(page);
      const bool hit = post.overlay_hits > pre.overlay_hits;
      if (touched) {
        ++record.touched_pairs;
        hit ? ++record.touched_retained : ++record.touched_retired;
      } else {
        hit ? ++record.untouched_retained : ++record.untouched_rendered;
      }
    }
  }
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e6_cache_economics\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    const serve::ConcurrentServer::Stats& s = r.after_traffic;
    char buffer[64];
    auto ratio = [&](std::size_t hits, std::size_t requests) {
      std::snprintf(buffer, sizeof(buffer), "%.4f",
                    requests == 0 ? 0.0
                                  : static_cast<double>(hits) /
                                        static_cast<double>(requests));
      return std::string(buffer);
    };
    out << "    {\n";
    if (r.cell.cap == serve::CacheLimits::kUnbounded) {
      out << "      \"cap_per_shard\": -1,\n";  // -1 = unbounded
    } else {
      out << "      \"cap_per_shard\": " << r.cell.cap << ",\n";
    }
    out << "      \"shards\": " << kShards << ",\n";
    out << "      \"profiles\": " << r.cell.profiles << ",\n";
    out << "      \"edits_per_1k\": " << r.cell.edits_per_1k << ",\n";
    out << "      \"paintings\": " << r.cell.paintings << ",\n";
    out << "      \"requests\": " << r.requests << ",\n";
    out << "      \"base_hit_ratio\": " << ratio(s.cache_hits, s.requests)
        << ",\n";
    out << "      \"overlay_hit_ratio\": "
        << ratio(s.overlay_hits, s.overlay_requests) << ",\n";
    out << "      \"base_entries\": " << s.cached_entries << ",\n";
    out << "      \"base_inserted\": " << s.cache_inserted << ",\n";
    out << "      \"base_evicted\": " << s.cache_evicted << ",\n";
    out << "      \"overlay_entries\": " << s.overlay_entries << ",\n";
    out << "      \"overlay_inserted\": " << s.overlay_inserted << ",\n";
    out << "      \"overlay_evicted\": " << s.overlay_evicted << ",\n";
    out << "      \"pairs\": " << r.pairs << ",\n";
    out << "      \"touched_pairs\": " << r.touched_pairs << ",\n";
    out << "      \"touched_retired\": " << r.touched_retired << ",\n";
    out << "      \"touched_retained\": " << r.touched_retained << ",\n";
    out << "      \"untouched_retained\": " << r.untouched_retained << ",\n";
    out << "      \"untouched_rendered\": " << r.untouched_rendered << ",\n";
    out << "      \"edit_pages_rewoven\": " << r.edit_pages_rewoven << ",\n";
    out << "      \"edit_linkbases_reauthored\": "
        << r.edit_linkbases_reauthored << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e6.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e6_cache_economics [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> caps =
      quick ? std::vector<std::size_t>{2, serve::CacheLimits::kUnbounded}
            : std::vector<std::size_t>{0, 2, 8,
                                       serve::CacheLimits::kUnbounded};
  const std::vector<std::size_t> profile_counts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
  const std::vector<std::size_t> edit_rates =
      quick ? std::vector<std::size_t>{32}
            : std::vector<std::size_t>{0, 8, 32};
  const std::size_t paintings = quick ? 8 : 24;
  const std::size_t steps = quick ? 400 : 4000;

  std::vector<Record> records;
  for (std::size_t cap : caps) {
    for (std::size_t profiles : profile_counts) {
      for (std::size_t edits : edit_rates) {
        Record r = run_cell(Cell{cap, profiles, edits, paintings}, steps);
        const serve::ConcurrentServer::Stats& s = r.after_traffic;
        std::printf(
            "cap=%s profiles=%zu edits/1k=%zu -> overlay hit %.2f "
            "(%zu entries, %zu evicted); edit: %zu/%zu pairs touched, "
            "retained %zu untouched / retired %zu touched\n",
            cap == serve::CacheLimits::kUnbounded
                ? "inf"
                : std::to_string(cap).c_str(),
            r.cell.profiles, r.cell.edits_per_1k,
            s.overlay_requests == 0
                ? 0.0
                : static_cast<double>(s.overlay_hits) /
                      static_cast<double>(s.overlay_requests),
            s.overlay_entries, s.overlay_evicted, r.touched_pairs, r.pairs,
            r.untouched_retained, r.touched_retired);
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return 0;
}

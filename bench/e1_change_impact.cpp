// E1 — the headline experiment (paper §5, the customer's change request).
//
// Switch a context of N paintings from an Index access structure to an
// Indexed Guided Tour and count what a developer must touch:
//
//   tangled   — every member page of the context changes (files_touched
//               grows linearly with N);
//   separated — exactly one authored artifact changes (links.xml),
//               regardless of N.
//
// Counters reported per run:
//   files_touched  — authored artifacts with any diff
//   files_total    — authored artifacts in the site
//   lines_changed  — added+deleted lines across the touched artifacts
//
// Expected shape (paper): separated wins; the gap grows with N.
#include <benchmark/benchmark.h>

#include "core/migration.hpp"
#include "museum/museum.hpp"

namespace {

using navsep::core::MigrationOptions;
using navsep::core::MigrationReport;
using navsep::hypermedia::AccessStructureKind;
using navsep::museum::MuseumWorld;

struct Setup {
  std::unique_ptr<MuseumWorld> world;
  navsep::hypermedia::NavigationalModel nav;
  std::unique_ptr<navsep::hypermedia::AccessStructure> index;
  std::unique_ptr<navsep::hypermedia::AccessStructure> igt;
  MigrationOptions options;
};

Setup make_setup(std::size_t paintings) {
  auto world = MuseumWorld::synthetic({.painters = 1,
                                       .paintings_per_painter = paintings,
                                       .movements = 3,
                                       .seed = 42});
  auto nav = world->derive_navigation();
  Setup s{std::move(world), std::move(nav), nullptr, nullptr, {}};
  s.index = s.world->paintings_structure(AccessStructureKind::Index, s.nav,
                                         "painter-0");
  s.igt = s.world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                       s.nav, "painter-0");
  s.options.separated_fixed_artifacts = s.world->data_artifacts();
  return s;
}

void report(benchmark::State& state, const MigrationReport& r) {
  state.counters["tangled_files_touched"] =
      static_cast<double>(r.tangled_authored.files_touched);
  state.counters["tangled_files_total"] =
      static_cast<double>(r.tangled_artifacts);
  state.counters["tangled_lines_changed"] =
      static_cast<double>(r.tangled_authored.line_stats.lines_changed());
  state.counters["separated_files_touched"] =
      static_cast<double>(r.separated_authored.files_touched);
  state.counters["separated_files_total"] =
      static_cast<double>(r.separated_artifacts);
  state.counters["separated_lines_changed"] =
      static_cast<double>(r.separated_authored.line_stats.lines_changed());
  state.counters["rendered_pages_changed"] =
      static_cast<double>(r.separated_rendered.files_touched);
}

void BM_ChangeImpact(benchmark::State& state) {
  Setup s = make_setup(static_cast<std::size_t>(state.range(0)));
  MigrationReport last{};
  for (auto _ : state) {
    last = navsep::core::measure_migration(s.nav, *s.index, *s.igt,
                                           s.options);
    benchmark::DoNotOptimize(last);
  }
  report(state, last);
}

}  // namespace

BENCHMARK(BM_ChangeImpact)
    ->Arg(3)    // the paper's own context size (Guitar/Guernica/Avignon)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// E1 — the headline experiment (paper §5, the customer's change request).
//
// Switch a context of N paintings from an Index access structure to an
// Indexed Guided Tour and count what a developer must touch:
//
//   tangled   — every member page of the context changes (files_touched
//               grows linearly with N);
//   separated — exactly one authored artifact changes (links.xml),
//               regardless of N.
//
// The "before" site comes out of nav::SitePipeline; the "after" structure
// is derived from the same engine-owned world and model.
//
// Counters reported per run:
//   files_touched  — authored artifacts with any diff
//   files_total    — authored artifacts in the site
//   lines_changed  — added+deleted lines across the touched artifacts
//
// Expected shape (paper): separated wins; the gap grows with N.
#include <benchmark/benchmark.h>

#include "core/migration.hpp"
#include "nav/pipeline.hpp"

namespace {

using navsep::core::MigrationOptions;
using navsep::core::MigrationReport;
using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

struct Setup {
  std::unique_ptr<nav::Engine> engine;  // owns world/model/Index structure
  std::unique_ptr<navsep::hypermedia::AccessStructure> igt;
  MigrationOptions options;
};

Setup make_setup(std::size_t paintings) {
  Setup s;
  s.engine = nav::SitePipeline()
                 .conceptual(navsep::museum::SyntheticSpec{
                     .painters = 1,
                     .paintings_per_painter = paintings,
                     .movements = 3,
                     .seed = 42})
                 .access(AccessStructureKind::Index, "painter-0")
                 .weave()
                 .serve();
  s.igt = s.engine->world().paintings_structure(
      AccessStructureKind::IndexedGuidedTour, s.engine->navigation(),
      "painter-0");
  s.options.separated_fixed_artifacts = s.engine->world().data_artifacts();
  return s;
}

void report(benchmark::State& state, const MigrationReport& r) {
  state.counters["tangled_files_touched"] =
      static_cast<double>(r.tangled_authored.files_touched);
  state.counters["tangled_files_total"] =
      static_cast<double>(r.tangled_artifacts);
  state.counters["tangled_lines_changed"] =
      static_cast<double>(r.tangled_authored.line_stats.lines_changed());
  state.counters["separated_files_touched"] =
      static_cast<double>(r.separated_authored.files_touched);
  state.counters["separated_files_total"] =
      static_cast<double>(r.separated_artifacts);
  state.counters["separated_lines_changed"] =
      static_cast<double>(r.separated_authored.line_stats.lines_changed());
  state.counters["rendered_pages_changed"] =
      static_cast<double>(r.separated_rendered.files_touched);
}

void BM_ChangeImpact(benchmark::State& state) {
  Setup s = make_setup(static_cast<std::size_t>(state.range(0)));
  MigrationReport last{};
  for (auto _ : state) {
    last = navsep::core::measure_migration(s.engine->navigation(),
                                           s.engine->structure(), *s.igt,
                                           s.options);
    benchmark::DoNotOptimize(last);
  }
  report(state, last);
}

}  // namespace

BENCHMARK(BM_ChangeImpact)
    ->Arg(3)    // the paper's own context size (Guitar/Guernica/Avignon)
    ->Arg(10)
    ->Arg(30)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// F6 — Figure 6: separating the navigational aspect — what the weaving
// costs.
//
// Substitution 1 (DESIGN.md): the paper assumes compile-time AspectJ
// weaving; we weave at runtime, so the separation has a measurable price.
// This bench renders the same page
//
//   tangled          — navigation emitted inline (no weaver), and
//   woven            — content render + PageCompose join point + the
//                      navigation aspect's advice,
//
// and reports the overhead ratio. Both fixtures come out of
// nav::SitePipeline (one .tangled(), one .weave()); both emit
// byte-identical pages (asserted in core_test), so the delta is pure
// mechanism cost. Expected shape: a small constant per page that
// amortizes to noise over whole-site builds.
#include <benchmark/benchmark.h>

#include "core/renderer.hpp"
#include "nav/pipeline.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> make_engine(std::size_t paintings,
                                         nav::WeaveMode mode) {
  nav::SitePipeline pipeline;
  pipeline
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 5})
      .access(AccessStructureKind::IndexedGuidedTour, "painter-0");
  if (mode == nav::WeaveMode::Tangled) {
    pipeline.tangled();
  } else {
    pipeline.weave();
  }
  auto engine = pipeline.serve();
  engine->internals().weaver().reset_stats();  // drop the build-time weave
  return engine;
}

void BM_TangledPage(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            nav::WeaveMode::Tangled);
  navsep::core::TangledRenderer renderer(engine->navigation(),
                                         engine->structure());
  const auto* node = engine->navigation().node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = renderer.render_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
}

void BM_WovenPage(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            nav::WeaveMode::Separated);
  navsep::aop::Weaver& weaver = engine->internals().weaver();
  navsep::core::SeparatedComposer composer(weaver);
  const auto* node = engine->navigation().node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = composer.compose_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
  state.counters["advice_invocations_per_page"] =
      static_cast<double>(weaver.stats().advice_invocations) /
      static_cast<double>(weaver.stats().join_points_executed / 2);
}

void BM_WovenSite(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            nav::WeaveMode::Separated);
  navsep::core::SeparatedComposer composer(engine->internals().weaver());
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = composer.compose_site(engine->navigation(),
                                      engine->structure());
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

void BM_TangledSite(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            nav::WeaveMode::Tangled);
  navsep::core::TangledRenderer renderer(engine->navigation(),
                                         engine->structure());
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = renderer.render_site();
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

}  // namespace

BENCHMARK(BM_TangledPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_WovenPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledSite)->Arg(30)->Arg(100);
BENCHMARK(BM_WovenSite)->Arg(30)->Arg(100);

// F6 — Figure 6: separating the navigational aspect — what the weaving
// costs.
//
// Substitution 1 (DESIGN.md): the paper assumes compile-time AspectJ
// weaving; we weave at runtime, so the separation has a measurable price.
// This bench renders the same page
//
//   tangled          — navigation emitted inline (no weaver), and
//   woven            — content render + PageCompose join point + the
//                      navigation aspect's advice,
//
// and reports the overhead ratio. Both emit byte-identical pages (asserted
// in core_test), so the delta is pure mechanism cost. Expected shape: a
// small constant per page that amortizes to noise over whole-site builds.
#include <benchmark/benchmark.h>

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "museum/museum.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
using navsep::museum::MuseumWorld;

struct Fixture {
  std::unique_ptr<MuseumWorld> world;
  navsep::hypermedia::NavigationalModel nav;
  std::unique_ptr<navsep::hypermedia::AccessStructure> igt;
};

Fixture make_fixture(std::size_t paintings) {
  auto world = MuseumWorld::synthetic({.painters = 1,
                                       .paintings_per_painter = paintings,
                                       .movements = 2,
                                       .seed = 5});
  auto nav = world->derive_navigation();
  Fixture f{std::move(world), std::move(nav), nullptr};
  f.igt = f.world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                       f.nav, "painter-0");
  return f;
}

void BM_TangledPage(benchmark::State& state) {
  Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  navsep::core::TangledRenderer renderer(f.nav, *f.igt);
  const auto* node = f.nav.node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = renderer.render_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
}

void BM_WovenPage(benchmark::State& state) {
  Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      navsep::core::NavigationAspect::from_arcs(f.igt->arcs()));
  navsep::core::SeparatedComposer composer(weaver);
  const auto* node = f.nav.node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = composer.compose_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
  state.counters["advice_invocations_per_page"] =
      static_cast<double>(weaver.stats().advice_invocations) /
      static_cast<double>(weaver.stats().join_points_executed / 2);
}

void BM_WovenSite(benchmark::State& state) {
  Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      navsep::core::NavigationAspect::from_arcs(f.igt->arcs()));
  navsep::core::SeparatedComposer composer(weaver);
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = composer.compose_site(f.nav, *f.igt);
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

void BM_TangledSite(benchmark::State& state) {
  Fixture f = make_fixture(static_cast<std::size_t>(state.range(0)));
  navsep::core::TangledRenderer renderer(f.nav, *f.igt);
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = renderer.render_site();
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

}  // namespace

BENCHMARK(BM_TangledPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_WovenPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledSite)->Arg(30)->Arg(100);
BENCHMARK(BM_WovenSite)->Arg(30)->Arg(100);

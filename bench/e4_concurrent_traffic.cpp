// E4 — concurrent traffic over epoch-published snapshots.
//
// E3 measured what one writer must recompute per edit; this experiment
// measures what many readers get to do WHILE the writer edits. The sweep
// crosses session count × museum size × write rate: K behavior-model
// sessions (random surfer / guided tour / context switcher / kiosk)
// drive GETs through a ConcurrentServer while a writer thread re-authors
// one linkbase arc at the configured rate, each edit publishing a new
// site epoch. Reported per cell: throughput, latency quantiles, cache
// effectiveness, epochs published.
//
// Expected shape: read throughput scales with sessions (snapshot acquire
// is an atomic refcount bump; the response cache is mutex-striped across
// shards) and is insensitive to the write rate — writers never block
// readers, they only retire cache entries by advancing the epoch. The
// single-mutex HypermediaServer is the baseline this replaces; the
// scaling headroom is the point of src/serve/.
//
// Unlike the google-benchmark drivers, this is a self-contained driver
// with its own main: it emits BENCH_e4.json (machine-readable, one
// record per sweep cell) to seed the perf trajectory.
//
//   e4_concurrent_traffic [--quick] [--out PATH]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "nav/pipeline.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/workload.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;

struct Cell {
  std::size_t threads = 1;
  std::size_t paintings = 16;
  double writes_per_sec = 0.0;
};

struct Record {
  Cell cell;
  serve::WorkloadResult result;
  std::size_t writes_applied = 0;
  std::uint64_t epochs_published = 0;
};

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

Record run_cell(const Cell& cell, std::size_t steps_per_session) {
  Record record;
  record.cell = cell;

  auto engine = museum_engine(cell.paintings);
  serve::Workload workload(*engine);  // capture before the writer starts
  auto server = engine->open_concurrent();

  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::atomic<bool> done{false};
  std::atomic<std::size_t> writes{0};
  std::thread writer;
  if (cell.writes_per_sec > 0.0 && !arcs.empty()) {
    const auto interval = std::chrono::duration<double>(
        1.0 / cell.writes_per_sec);
    writer = std::thread([&] {
      std::size_t w = 0;
      while (!done.load(std::memory_order_acquire)) {
        hm::AccessArc edited = arcs[w % arcs.size()];
        edited.title += " (rev " + std::to_string(w) + ")";
        (void)engine->internals().replace_arc(w % arcs.size(),
                                              std::move(edited));
        writes.fetch_add(1, std::memory_order_relaxed);
        ++w;
        std::this_thread::sleep_for(interval);
      }
    });
  }

  serve::WorkloadOptions options;
  options.threads = cell.threads;
  options.steps_per_session = steps_per_session;
  record.result = workload.run(*server, options);

  done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  record.writes_applied = writes.load();
  record.epochs_published = engine->snapshots().epoch();
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e4_concurrent_traffic\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    const serve::WorkloadResult& w = r.result;
    char buffer[256];
    out << "    {\n";
    out << "      \"threads\": " << r.cell.threads << ",\n";
    out << "      \"paintings\": " << r.cell.paintings << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", r.cell.writes_per_sec);
    out << "      \"writes_per_sec\": " << buffer << ",\n";
    out << "      \"writes_applied\": " << r.writes_applied << ",\n";
    out << "      \"epochs_published\": " << r.epochs_published << ",\n";
    out << "      \"sessions\": " << w.sessions << ",\n";
    out << "      \"steps\": " << w.steps << ",\n";
    out << "      \"requests\": " << w.requests << ",\n";
    out << "      \"failures\": " << w.failures << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", w.seconds);
    out << "      \"seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", w.throughput_rps);
    out << "      \"throughput_rps\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", w.latency.mean_ns());
    out << "      \"latency_mean_ns\": " << buffer << ",\n";
    out << "      \"latency_p50_ns\": " << w.latency.quantile_ns(0.5)
        << ",\n";
    out << "      \"latency_p90_ns\": " << w.latency.quantile_ns(0.9)
        << ",\n";
    out << "      \"latency_p99_ns\": " << w.latency.quantile_ns(0.99)
        << ",\n";
    out << "      \"latency_max_ns\": " << w.latency.max_ns() << ",\n";
    out << "      \"cache_hits\": " << w.server.cache_hits << ",\n";
    out << "      \"snapshot_resolves\": " << w.server.snapshot_resolves
        << ",\n";
    out << "      \"stale_refills\": " << w.server.stale_refills << ",\n";
    out << "      \"not_found\": " << w.server.not_found << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e4.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e4_concurrent_traffic [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> museum_sizes =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 128};
  const std::vector<double> write_rates =
      quick ? std::vector<double>{0.0, 16.0}
            : std::vector<double>{0.0, 8.0, 64.0};
  const std::size_t steps = quick ? 64 : 4096;

  std::vector<Record> records;
  for (std::size_t paintings : museum_sizes) {
    for (double rate : write_rates) {
      for (std::size_t threads : thread_counts) {
        Record r = run_cell(Cell{threads, paintings, rate}, steps);
        std::printf(
            "threads=%zu paintings=%zu writes/s=%.0f -> %.0f req/s "
            "(p99 %llu ns, %zu stale refills, %llu epochs, %zu failures)\n",
            r.cell.threads, r.cell.paintings, r.cell.writes_per_sec,
            r.result.throughput_rps,
            static_cast<unsigned long long>(r.result.latency.quantile_ns(0.99)),
            r.result.server.stale_refills,
            static_cast<unsigned long long>(r.epochs_published),
            r.result.failures);
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return 0;
}

// E2 — context-dependent navigation (paper §2).
//
// The museum scenario: the successor of a painting depends on how it was
// reached. This bench drives NavigationSession through
//
//   BM_TourWalk         — next() across a whole by-author context
//   BM_ContextSwitch    — visit + through(family) re-contextualization
//   BM_MixedSession     — a realistic browse: enter, walk, switch family,
//                         walk, leave — with join points announced to a
//                         weaver carrying an audit aspect
//
// Expected shape: per-step cost linear in context size (contexts are
// ordered scans), constant-ish context switches.
#include <benchmark/benchmark.h>

#include <memory>

#include "aop/weaver.hpp"
#include "museum/museum.hpp"
#include "site/session.hpp"

namespace {

using navsep::museum::MuseumWorld;

struct Fixture {
  std::unique_ptr<MuseumWorld> world;
  navsep::hypermedia::NavigationalModel nav;
  navsep::hypermedia::ContextFamily by_author;
  navsep::hypermedia::ContextFamily by_movement;
};

std::unique_ptr<Fixture> make_fixture(std::size_t painters,
                                      std::size_t paintings) {
  auto world = MuseumWorld::synthetic({.painters = painters,
                                       .paintings_per_painter = paintings,
                                       .movements = 4,
                                       .seed = 13});
  auto nav = world->derive_navigation();
  auto by_author = world->by_author(nav);
  auto by_movement = world->by_movement(nav);
  return std::unique_ptr<Fixture>(new Fixture{std::move(world),
                                              std::move(nav),
                                              std::move(by_author),
                                              std::move(by_movement)});
}

void BM_TourWalk(benchmark::State& state) {
  auto f = make_fixture(1, static_cast<std::size_t>(state.range(0)));
  std::size_t steps = 0;
  for (auto _ : state) {
    navsep::site::NavigationSession session(f->nav, {&f->by_author});
    session.enter_context("ByAuthor", "painter-0", "painter-0-work-0");
    steps = 0;
    while (session.next()) ++steps;
    benchmark::DoNotOptimize(session);
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}

void BM_ContextSwitch(benchmark::State& state) {
  auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 5);
  navsep::site::NavigationSession session(
      f->nav, {&f->by_author, &f->by_movement});
  session.visit("painter-0-work-0");
  bool flip = false;
  for (auto _ : state) {
    bool ok = session.through(flip ? "ByAuthor" : "ByMovement");
    flip = !flip;
    benchmark::DoNotOptimize(ok);
  }
}

void BM_MixedSession(benchmark::State& state) {
  auto f = make_fixture(static_cast<std::size_t>(state.range(0)), 5);
  navsep::aop::Weaver weaver;
  auto audit = std::make_shared<navsep::aop::Aspect>("audit");
  std::size_t traversals = 0;
  audit->before("traverse(*)", [&](navsep::aop::JoinPointContext&) {
    ++traversals;
  });
  weaver.register_aspect(audit);

  for (auto _ : state) {
    navsep::site::NavigationSession session(
        f->nav, {&f->by_author, &f->by_movement}, &weaver);
    session.enter_context("ByAuthor", "painter-0", "painter-0-work-0");
    session.next();
    session.next();
    session.through("ByMovement");
    session.next();
    session.prev();
    session.leave_context();
    benchmark::DoNotOptimize(session);
  }
  state.counters["audited_traversals"] = static_cast<double>(traversals);
}

}  // namespace

BENCHMARK(BM_TourWalk)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_ContextSwitch)->Arg(10)->Arg(100);
BENCHMARK(BM_MixedSession)->Arg(10)->Arg(100);

// E2 — context-dependent navigation (paper §2).
//
// The museum scenario: the successor of a painting depends on how it was
// reached. The fixture engine (nav::SitePipeline with both context
// families) drives NavigationSession through
//
//   BM_TourWalk         — next() across a whole by-author context
//                         (raw traversal: session without a weaver)
//   BM_ContextSwitch    — visit + through(family) re-contextualization
//   BM_MixedSession     — a realistic browse: enter, walk, switch family,
//                         walk, leave — sessions opened on the engine, so
//                         join points reach its weaver (audit aspect
//                         registered through EngineInternals)
//
// Expected shape: per-step cost linear in context size (contexts are
// ordered scans), constant-ish context switches.
#include <benchmark/benchmark.h>

#include <memory>

#include "nav/pipeline.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> make_engine(std::size_t painters,
                                         std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = painters,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 4,
                                                .seed = 13})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

void BM_TourWalk(benchmark::State& state) {
  auto engine = make_engine(1, static_cast<std::size_t>(state.range(0)));
  const auto& by_author = engine->context_families()[0];
  std::size_t steps = 0;
  for (auto _ : state) {
    navsep::site::NavigationSession session(engine->navigation(),
                                            {&by_author});
    session.enter_context("ByAuthor", "painter-0", "painter-0-work-0");
    steps = 0;
    while (session.next()) ++steps;
    benchmark::DoNotOptimize(session);
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(steps));
}

void BM_ContextSwitch(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)), 5);
  navsep::site::NavigationSession session = engine->open_session();
  session.visit("painter-0-work-0");
  bool flip = false;
  for (auto _ : state) {
    bool ok = session.through(flip ? "ByAuthor" : "ByMovement");
    flip = !flip;
    benchmark::DoNotOptimize(ok);
  }
}

void BM_MixedSession(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)), 5);
  auto audit = std::make_shared<navsep::aop::Aspect>("audit");
  std::size_t traversals = 0;
  audit->before("traverse(*)", [&](navsep::aop::JoinPointContext&) {
    ++traversals;
  });
  engine->internals().weaver().register_aspect(audit);

  for (auto _ : state) {
    navsep::site::NavigationSession session = engine->open_session();
    session.enter_context("ByAuthor", "painter-0", "painter-0-work-0");
    session.next();
    session.next();
    session.through("ByMovement");
    session.next();
    session.prev();
    session.leave_context();
    benchmark::DoNotOptimize(session);
  }
  state.counters["audited_traversals"] = static_cast<double>(traversals);
}

}  // namespace

BENCHMARK(BM_TourWalk)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_ContextSwitch)->Arg(10)->Arg(100);
BENCHMARK(BM_MixedSession)->Arg(10)->Arg(100);

// E10 — route programs: lazy vs AOT compilation economics.
//
// PR 9's route programs compile one declarative expression two ways:
// RouteCompile::Aot expands at MUTATION time into an authored
// `links-<name>.xml` through the build graph, RouteCompile::Lazy ships
// only the program text and expands at SERVE time inside the snapshot,
// memoized under slice validity. Same bytes (the differential harness
// pins it — and every cell here re-checks served pages across modes),
// different bill. This experiment itemizes that bill per museum size:
//
//   * registration cost — AOT pays expansion + authoring up front,
//     lazy is a table write;
//   * cold vs warm serve latency — lazy pays expansion on first touch,
//     then both modes serve from the overlay cache;
//   * family-edit churn — alternating expansion-PRESERVING edits (tour
//     rotations: a route's expansion is a reachable SET, so reorders
//     change nothing) with expansion-CHANGING ones (membership drops).
//     AOT pays re-expansion inside every mutation; lazy retires only
//     the cache entries whose expanded slice actually changed, visible
//     as churn_overlay_renders << churn_overlay_hits.
//
// Self-contained driver (no google-benchmark): emits BENCH_e10.json,
// one record per (museum size, compile mode).
//
//   e10_route_programs [--quick] [--out PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "nav/route.hpp"
#include "serve/concurrent_server.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Record {
  std::size_t paintings = 0;
  nav::RouteCompile mode = nav::RouteCompile::Aot;
  std::size_t routes = 0;
  std::size_t pages = 0;
  double register_seconds = 0;  ///< registering all routes + the profile
  double cold_seconds = 0;      ///< first pass (lazy expands here)
  double warm_seconds = 0;      ///< second pass (both modes cached)
  std::size_t churn_edits = 0;
  double churn_mutation_seconds = 0;  ///< writer-side edit cost
  double churn_reprobe_seconds = 0;   ///< reader-side re-touch cost
  std::size_t churn_overlay_hits = 0;
  std::size_t churn_overlay_renders = 0;
  std::size_t churn_linkbases_reauthored = 0;
  std::size_t churn_pages_rewoven = 0;
  bool bytes_match_other_mode = false;
};

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::vector<nav::RouteProgram> route_programs(nav::RouteCompile mode) {
  return {
      {"authors", "@ByAuthor", mode},
      {"spine", "index-entry / next*", mode},
      {"cross", "(@ByAuthor | @ByMovement) / next", mode},
  };
}

/// One edit of the churn phase: even steps rotate the first ByAuthor
/// tour (expansion-preserving — route sets are reorder-invariant), odd
/// steps drop-or-restore its last member (expansion-changing).
nav::RebuildReport churn_edit(nav::Engine& engine, std::size_t step,
                              std::vector<std::string>& parked) {
  return engine.internals().edit_context_family(
      "ByAuthor", [&](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        if (contexts.empty()) return;
        std::vector<std::string> ids = contexts.front().node_ids();
        if (step % 2 == 0) {
          if (ids.size() < 2) return;
          std::rotate(ids.begin(), ids.begin() + 1, ids.end());
        } else if (parked.empty()) {
          if (ids.size() < 2) return;
          parked.push_back(ids.back());
          ids.pop_back();
        } else {
          ids.push_back(parked.back());
          parked.pop_back();
        }
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
}

struct ModeRun {
  Record record;
  std::map<std::string, std::string> cold_bytes;  ///< page → served body
};

ModeRun run_mode(nav::RouteCompile mode, std::size_t paintings,
                 std::size_t edits) {
  ModeRun run;
  Record& record = run.record;
  record.paintings = paintings;
  record.mode = mode;
  record.churn_edits = edits;

  auto engine = museum_engine(paintings);

  const auto register_start = Clock::now();
  const std::vector<nav::RouteProgram> programs = route_programs(mode);
  std::vector<std::string> names;
  for (const nav::RouteProgram& program : programs) {
    (void)engine->internals().register_route(program);
    names.push_back(program.name);
  }
  engine->internals().register_profile({"routes", names});
  record.register_seconds = seconds_since(register_start);
  record.routes = programs.size();

  std::vector<std::string> pages;
  for (const std::string& path : engine->site().paths()) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      pages.push_back(path);
    }
  }
  record.pages = pages.size();
  auto server = engine->open_concurrent();

  const auto cold_start = Clock::now();
  for (const std::string& page : pages) {
    site::Response response = server->get(page, "routes");
    if (response.ok()) run.cold_bytes.emplace(page, *response.body);
  }
  record.cold_seconds = seconds_since(cold_start);

  const auto warm_start = Clock::now();
  for (const std::string& page : pages) (void)server->get(page, "routes");
  record.warm_seconds = seconds_since(warm_start);

  const serve::ConcurrentServer::Stats warmed = server->stats();
  std::vector<std::string> parked;
  for (std::size_t e = 0; e < edits; ++e) {
    const auto edit_start = Clock::now();
    nav::RebuildReport report = churn_edit(*engine, e, parked);
    record.churn_mutation_seconds += seconds_since(edit_start);
    record.churn_linkbases_reauthored += report.linkbases_reauthored;
    record.churn_pages_rewoven += report.pages_rewoven;

    const auto reprobe_start = Clock::now();
    for (const std::string& page : pages) (void)server->get(page, "routes");
    record.churn_reprobe_seconds += seconds_since(reprobe_start);
  }
  const serve::ConcurrentServer::Stats churned = server->stats();
  record.churn_overlay_hits = churned.overlay_hits - warmed.overlay_hits;
  record.churn_overlay_renders =
      churned.overlay_renders - warmed.overlay_renders;
  return run;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e10_route_programs\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    char buffer[64];
    out << "    {\n";
    out << "      \"paintings\": " << r.paintings << ",\n";
    out << "      \"mode\": \""
        << (r.mode == nav::RouteCompile::Aot ? "aot" : "lazy") << "\",\n";
    out << "      \"routes\": " << r.routes << ",\n";
    out << "      \"pages\": " << r.pages << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", r.register_seconds);
    out << "      \"register_seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", r.cold_seconds);
    out << "      \"cold_pass_seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", r.warm_seconds);
    out << "      \"warm_pass_seconds\": " << buffer << ",\n";
    out << "      \"churn_edits\": " << r.churn_edits << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", r.churn_mutation_seconds);
    out << "      \"churn_mutation_seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", r.churn_reprobe_seconds);
    out << "      \"churn_reprobe_seconds\": " << buffer << ",\n";
    out << "      \"churn_overlay_hits\": " << r.churn_overlay_hits << ",\n";
    out << "      \"churn_overlay_renders\": " << r.churn_overlay_renders
        << ",\n";
    out << "      \"churn_linkbases_reauthored\": "
        << r.churn_linkbases_reauthored << ",\n";
    out << "      \"churn_pages_rewoven\": " << r.churn_pages_rewoven
        << ",\n";
    out << "      \"bytes_match_other_mode\": "
        << (r.bytes_match_other_mode ? "true" : "false") << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e10.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e10_route_programs [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> museum_sizes =
      quick ? std::vector<std::size_t>{8}
            : std::vector<std::size_t>{16, 64, 128};
  const std::size_t edits = quick ? 4 : 20;

  std::vector<Record> records;
  for (std::size_t paintings : museum_sizes) {
    ModeRun aot = run_mode(nav::RouteCompile::Aot, paintings, edits);
    ModeRun lazy = run_mode(nav::RouteCompile::Lazy, paintings, edits);
    // The differential backstop, in the bench itself: both modes must
    // have served identical bytes for every page on the cold pass.
    const bool identical = aot.cold_bytes == lazy.cold_bytes;
    aot.record.bytes_match_other_mode = identical;
    lazy.record.bytes_match_other_mode = identical;
    if (!identical) {
      std::cerr << "FATAL: lazy and AOT served different bytes at paintings="
                << paintings << "\n";
      return 1;
    }
    for (ModeRun* run : {&aot, &lazy}) {
      const Record& r = run->record;
      std::printf(
          "paintings=%zu mode=%s -> register %.3fms, cold %.3fms, warm "
          "%.3fms; churn(%zu edits): mutate %.3fms, reprobe %.3fms, "
          "%zu hits / %zu renders, %zu linkbases reauthored\n",
          r.paintings, r.mode == nav::RouteCompile::Aot ? "aot" : "lazy",
          r.register_seconds * 1e3, r.cold_seconds * 1e3,
          r.warm_seconds * 1e3, r.churn_edits,
          r.churn_mutation_seconds * 1e3, r.churn_reprobe_seconds * 1e3,
          r.churn_overlay_hits, r.churn_overlay_renders,
          r.churn_linkbases_reauthored);
      records.push_back(run->record);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return 0;
}

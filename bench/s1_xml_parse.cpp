// S1 — XML substrate soundness: parse/serialize throughput on
// museum-shaped documents.
#include <benchmark/benchmark.h>

#include "museum/museum.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace {

std::string museum_document(std::size_t painters) {
  auto world = navsep::museum::MuseumWorld::synthetic(
      {.painters = painters,
       .paintings_per_painter = 8,
       .movements = 4,
       .seed = 1});
  // One big document holding every painter (stresses depth + siblings).
  navsep::xml::Document doc;
  auto& root = doc.set_root(navsep::xml::QName("museum"));
  for (const std::string& pid : world->painter_ids()) {
    root.append(world->painter_document(pid)->root()->clone());
  }
  return navsep::xml::write(doc, {.pretty = true});
}

void BM_Parse(benchmark::State& state) {
  std::string text = museum_document(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto doc = navsep::xml::parse(text);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_Serialize(benchmark::State& state) {
  std::string text = museum_document(static_cast<std::size_t>(state.range(0)));
  auto doc = navsep::xml::parse(text);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string out = navsep::xml::write(*doc, {.pretty = true});
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void BM_RoundTrip(benchmark::State& state) {
  std::string text = museum_document(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto doc = navsep::xml::parse(text);
    std::string out = navsep::xml::write(*doc, {});
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

}  // namespace

BENCHMARK(BM_Parse)->Arg(10)->Arg(100)->Arg(300);
BENCHMARK(BM_Serialize)->Arg(10)->Arg(100)->Arg(300);
BENCHMARK(BM_RoundTrip)->Arg(10)->Arg(100);

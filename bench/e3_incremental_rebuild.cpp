// E3 — the runtime companion to E1's authored-artifact asymmetry.
//
// E1 measured what a developer must *edit* when the access structure
// changes (one linkbase vs every page). This experiment measures what the
// runtime must *recompute*: a full rebuild() re-weaves the whole site on
// any change, while the incremental build graph re-weaves only the pages
// whose arc slice the edit touched.
//
//   BM_FullReweave/N        — rebuild() over an N-painting museum
//   BM_IncrementalArcEdit/N — replace one authored arc (retitle its
//                             anchor), which re-weaves exactly one page
//   BM_IncrementalRetitle/N — retitle one member (index + two tour
//                             neighbors re-weave)
//
// Counters reported per run:
//   pages_rewoven / pages_total — the work the graph actually did
//   reweave_ratio               — their quotient; shrinks as the museum
//                                 grows for the incremental paths, pinned
//                                 at 1.0 for the full path
//   nodes_dirty                 — build-graph nodes visited
//
// Expected shape: incremental latency is O(affected pages) + one linkbase
// re-authoring, so the full/incremental gap widens linearly with N; the
// paper instance (3 paintings) sits next to synthetic museums of 10²–10⁴
// nodes.
#include <benchmark/benchmark.h>

#include <string>

#include "nav/pipeline.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour, "painter-0")
      .weave()
      .serve();
}

void report(benchmark::State& state, const nav::RebuildReport& r) {
  state.counters["pages_rewoven"] = static_cast<double>(r.pages_rewoven);
  state.counters["pages_total"] = static_cast<double>(r.pages_total);
  state.counters["reweave_ratio"] = r.reweave_ratio();
  state.counters["nodes_dirty"] = static_cast<double>(r.nodes_dirty);
}

void BM_FullReweave(benchmark::State& state) {
  auto engine = museum_engine(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    engine->internals().rebuild();
    benchmark::DoNotOptimize(engine->site().size());
  }
  nav::RebuildReport full{};
  full.pages_total = engine->build_graph().count(nav::ProductKind::Page);
  full.pages_rewoven = full.pages_total;  // rebuild() recomposes everything
  report(state, full);
}

void BM_IncrementalArcEdit(benchmark::State& state) {
  auto engine = museum_engine(static_cast<std::size_t>(state.range(0)));
  // The finest edit the linkbase supports: retitle one member page's
  // "up" anchor. Each iteration writes a fresh title so the edit is
  // never a no-op (an unchanged hash would cut the rebuild off).
  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::size_t up_index = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].role == hm::roles::kUp) {
      up_index = i;
      break;
    }
  }
  nav::RebuildReport last{};
  std::size_t revision = 0;
  for (auto _ : state) {
    hm::AccessArc edited = arcs[up_index];
    edited.title = "Index (rev " + std::to_string(++revision) + ")";
    last = engine->replace_arc(up_index, edited);
    benchmark::DoNotOptimize(last);
  }
  report(state, last);
}

void BM_IncrementalRetitle(benchmark::State& state) {
  auto engine = museum_engine(static_cast<std::size_t>(state.range(0)));
  const std::string victim =
      engine->structure().members()[engine->structure().members().size() / 2]
          .node_id;
  nav::RebuildReport last{};
  std::size_t revision = 0;
  for (auto _ : state) {
    last = engine->retitle_node(victim,
                                "Retitled " + std::to_string(++revision));
    benchmark::DoNotOptimize(last);
  }
  report(state, last);
}

}  // namespace

// 3 = the paper's own context size; 100/1000/10000 = the synthetic
// museums (page count is N members + 1 index page).
BENCHMARK(BM_FullReweave)
    ->Arg(3)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalArcEdit)
    ->Arg(3)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IncrementalRetitle)
    ->Arg(3)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// F3 — Figure 3: the Guitar node implemented with an Index access
// structure, tangled style.
//
// Regenerates the figure's page (checked for shape in core_test) and
// measures tangled rendering: one member page, the index page, and the
// whole site, as the context grows. Expected shape: member-page cost is
// O(1) in context size (Index pages carry one "up" anchor); index-page and
// site cost grow linearly.
#include <benchmark/benchmark.h>

#include "core/renderer.hpp"
#include "museum/museum.hpp"

namespace {

using navsep::core::TangledRenderer;
using navsep::hypermedia::AccessStructureKind;
using navsep::museum::MuseumWorld;

struct Site {
  std::unique_ptr<MuseumWorld> world;
  navsep::hypermedia::NavigationalModel nav;
  std::unique_ptr<navsep::hypermedia::AccessStructure> structure;
};

Site make_site(std::size_t paintings, AccessStructureKind kind) {
  auto world = MuseumWorld::synthetic({.painters = 1,
                                       .paintings_per_painter = paintings,
                                       .movements = 2,
                                       .seed = 11});
  auto nav = world->derive_navigation();
  Site s{std::move(world), std::move(nav), nullptr};
  s.structure = s.world->paintings_structure(kind, s.nav, "painter-0");
  return s;
}

void BM_TangledMemberPage(benchmark::State& state) {
  Site s = make_site(static_cast<std::size_t>(state.range(0)),
                     AccessStructureKind::Index);
  TangledRenderer renderer(s.nav, *s.structure);
  const auto* node = s.nav.node("painter-0-work-0");
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string page = renderer.render_node_page(*node);
    bytes = page.size();
    benchmark::DoNotOptimize(page);
  }
  state.counters["page_bytes"] = static_cast<double>(bytes);
}

void BM_TangledIndexPage(benchmark::State& state) {
  Site s = make_site(static_cast<std::size_t>(state.range(0)),
                     AccessStructureKind::Index);
  TangledRenderer renderer(s.nav, *s.structure);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string page = renderer.render_structure_page();
    bytes = page.size();
    benchmark::DoNotOptimize(page);
  }
  state.counters["page_bytes"] = static_cast<double>(bytes);
}

void BM_TangledWholeSite(benchmark::State& state) {
  Site s = make_site(static_cast<std::size_t>(state.range(0)),
                     AccessStructureKind::Index);
  TangledRenderer renderer(s.nav, *s.structure);
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = renderer.render_site();
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

}  // namespace

BENCHMARK(BM_TangledMemberPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledIndexPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledWholeSite)->Arg(3)->Arg(30)->Arg(100);

// F3 — Figure 3: the Guitar node implemented with an Index access
// structure, tangled style.
//
// Regenerates the figure's page (checked for shape in core_test) and
// measures tangled rendering: one member page, the index page, and the
// whole site, as the context grows. The fixture comes out of
// nav::SitePipeline in .tangled() mode. Expected shape: member-page cost
// is O(1) in context size (Index pages carry one "up" anchor); index-page
// and site cost grow linearly.
#include <benchmark/benchmark.h>

#include "core/renderer.hpp"
#include "nav/pipeline.hpp"

namespace {

using navsep::core::TangledRenderer;
using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> make_engine(std::size_t paintings,
                                         AccessStructureKind kind) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 11})
      .access(kind, "painter-0")
      .tangled()
      .serve();
}

void BM_TangledMemberPage(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            AccessStructureKind::Index);
  TangledRenderer renderer(engine->navigation(), engine->structure());
  const auto* node = engine->navigation().node("painter-0-work-0");
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string page = renderer.render_node_page(*node);
    bytes = page.size();
    benchmark::DoNotOptimize(page);
  }
  state.counters["page_bytes"] = static_cast<double>(bytes);
}

void BM_TangledIndexPage(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            AccessStructureKind::Index);
  TangledRenderer renderer(engine->navigation(), engine->structure());
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string page = renderer.render_structure_page();
    bytes = page.size();
    benchmark::DoNotOptimize(page);
  }
  state.counters["page_bytes"] = static_cast<double>(bytes);
}

void BM_TangledWholeSite(benchmark::State& state) {
  auto engine = make_engine(static_cast<std::size_t>(state.range(0)),
                            AccessStructureKind::Index);
  TangledRenderer renderer(engine->navigation(), engine->structure());
  std::size_t pages = 0;
  for (auto _ : state) {
    auto site = renderer.render_site();
    pages = site.size();
    benchmark::DoNotOptimize(site);
  }
  state.counters["pages"] = static_cast<double>(pages);
}

}  // namespace

BENCHMARK(BM_TangledMemberPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledIndexPage)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_TangledWholeSite)->Arg(3)->Arg(30)->Arg(100);

// S2 — XPath substrate soundness: query evaluation over museum documents.
#include <benchmark/benchmark.h>

#include "museum/museum.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/xpath.hpp"

namespace {

std::unique_ptr<navsep::xml::Document> museum_doc(std::size_t painters) {
  auto world = navsep::museum::MuseumWorld::synthetic(
      {.painters = painters,
       .paintings_per_painter = 8,
       .movements = 4,
       .seed = 2});
  navsep::xml::Document doc;
  auto& root = doc.set_root(navsep::xml::QName("museum"));
  for (const std::string& pid : world->painter_ids()) {
    root.append(world->painter_document(pid)->root()->clone());
  }
  return navsep::xml::parse(navsep::xml::write(doc, {}));
}

void run_query(benchmark::State& state, const char* expr) {
  auto doc = museum_doc(static_cast<std::size_t>(state.range(0)));
  navsep::xpath::Environment env;
  auto compiled = navsep::xpath::parse_expression(expr);
  std::size_t hits = 0;
  for (auto _ : state) {
    auto result = navsep::xpath::select(*compiled, *doc, env);
    hits = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["hits"] = static_cast<double>(hits);
}

void BM_DescendantScan(benchmark::State& state) {
  run_query(state, "//painting");
}
void BM_AttributePredicate(benchmark::State& state) {
  run_query(state, "//painting[@id='painter-0-work-3']");
}
void BM_PositionalPredicate(benchmark::State& state) {
  run_query(state, "/museum/painter[last()]/painting[1]");
}
void BM_StringPredicate(benchmark::State& state) {
  run_query(state, "//painting[starts-with(title, 'The')]");
}
void BM_CountAggregate(benchmark::State& state) {
  auto doc = museum_doc(static_cast<std::size_t>(state.range(0)));
  navsep::xpath::Environment env;
  auto compiled =
      navsep::xpath::parse_expression("count(//painting[year > 1900])");
  double value = 0;
  for (auto _ : state) {
    value = navsep::xpath::evaluate(
                *compiled, {.node = doc.get(), .position = 1, .size = 1,
                            .env = &env})
                .to_number();
    benchmark::DoNotOptimize(value);
  }
  state.counters["count"] = value;
}
void BM_CompileOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto e = navsep::xpath::parse_expression(
        "//painter[painting/@id]/painting[position() < last()]/title");
    benchmark::DoNotOptimize(e);
  }
}

}  // namespace

BENCHMARK(BM_DescendantScan)->Arg(10)->Arg(100);
BENCHMARK(BM_AttributePredicate)->Arg(10)->Arg(100);
BENCHMARK(BM_PositionalPredicate)->Arg(10)->Arg(100);
BENCHMARK(BM_StringPredicate)->Arg(10)->Arg(100);
BENCHMARK(BM_CountAggregate)->Arg(10)->Arg(100);
BENCHMARK(BM_CompileOnly);

// F5 — Figure 5: the implementation class graphs of the two access
// structures.
//
// The figure contrasts the object populations a developer instantiates for
// Index vs IndexedGuidedTour. This bench builds the full implementation
// stack at museum scale — conceptual instances, derived navigational
// model, access-structure objects — and reports the object/edge counts.
//
// Expected shape: model derivation linear in entities; the IGT object
// graph strictly contains the Index graph (same nodes, more arcs).
#include <benchmark/benchmark.h>

#include "nav/pipeline.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
using navsep::museum::MuseumWorld;
using navsep::museum::SyntheticSpec;

void BM_ConceptualInstantiation(benchmark::State& state) {
  const auto painters = static_cast<std::size_t>(state.range(0));
  SyntheticSpec spec{.painters = painters,
                     .paintings_per_painter = 5,
                     .movements = 3,
                     .seed = 21};
  std::size_t entities = 0;
  for (auto _ : state) {
    auto world = MuseumWorld::synthetic(spec);
    entities = world->conceptual().size();
    benchmark::DoNotOptimize(world);
  }
  state.counters["entities"] = static_cast<double>(entities);
}

void BM_NavigationalDerivation(benchmark::State& state) {
  const auto painters = static_cast<std::size_t>(state.range(0));
  auto world = MuseumWorld::synthetic({.painters = painters,
                                       .paintings_per_painter = 5,
                                       .movements = 3,
                                       .seed = 21});
  std::size_t nodes = 0, links = 0;
  for (auto _ : state) {
    auto nav = world->derive_navigation();
    nodes = nav.nodes().size();
    links = nav.links().size();
    benchmark::DoNotOptimize(nav);
  }
  state.counters["nav_nodes"] = static_cast<double>(nodes);
  state.counters["nav_links"] = static_cast<double>(links);
}

template <AccessStructureKind Kind>
void BM_StructureObjects(benchmark::State& state) {
  const auto paintings = static_cast<std::size_t>(state.range(0));
  auto world = MuseumWorld::synthetic({.painters = 1,
                                       .paintings_per_painter = paintings,
                                       .movements = 3,
                                       .seed = 21});
  auto nav = world->derive_navigation();
  std::size_t arcs = 0;
  for (auto _ : state) {
    auto structure = world->paintings_structure(Kind, nav, "painter-0");
    arcs = structure->arcs().size();
    benchmark::DoNotOptimize(structure);
  }
  state.counters["members"] = static_cast<double>(paintings);
  state.counters["arcs"] = static_cast<double>(arcs);
}

void BM_IndexObjects(benchmark::State& state) {
  BM_StructureObjects<AccessStructureKind::Index>(state);
}
void BM_IgtObjects(benchmark::State& state) {
  BM_StructureObjects<AccessStructureKind::IndexedGuidedTour>(state);
}

// The whole implementation stack at once: conceptual model -> schema ->
// access structure -> woven site -> server, through the façade. This is
// what an application pays for "give me a browsable museum".
void BM_PipelineServe(benchmark::State& state) {
  const auto paintings = static_cast<std::size_t>(state.range(0));
  std::size_t artifacts = 0;
  for (auto _ : state) {
    auto engine =
        navsep::nav::SitePipeline()
            .conceptual(SyntheticSpec{.painters = 1,
                                      .paintings_per_painter = paintings,
                                      .movements = 3,
                                      .seed = 21})
            .schema()
            .access(AccessStructureKind::IndexedGuidedTour, "painter-0")
            .weave()
            .serve();
    artifacts = engine->site().size();
    benchmark::DoNotOptimize(engine);
  }
  state.counters["artifacts"] = static_cast<double>(artifacts);
}

}  // namespace

BENCHMARK(BM_ConceptualInstantiation)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_NavigationalDerivation)->Arg(10)->Arg(100)->Arg(500);
BENCHMARK(BM_IndexObjects)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_IgtObjects)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_PipelineServe)->Arg(3)->Arg(30)->Arg(100)
    ->Unit(benchmark::kMillisecond);

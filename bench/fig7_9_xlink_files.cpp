// F7–F9 — Figures 7/8/9: picasso.xml, avignon.xml and links.xml.
//
// Regenerates the three files of the paper's separated design and runs the
// complete consumption chain the 2002 browsers lacked:
//
//   BM_EmitDataDocuments  — Figures 7/8: entity → XML serialization
//   BM_EmitLinkbase       — Figure 9: access structure → XLink linkbase
//   BM_ConsumeLinkbase    — parse → extract → expand arcs → traversal graph
//                           (input: the links.xml the pipeline authored)
//   BM_ResolveEndpoints   — XPointer resolution of every locator into the
//                           registered data documents
//
// Fixtures come out of nav::SitePipeline. Expected shape: everything
// linear in members; resolution dominated by shorthand-id lookup.
#include <benchmark/benchmark.h>

#include "core/linkbase.hpp"
#include "nav/pipeline.hpp"
#include "xlink/processor.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> wide_engine(std::size_t painters) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = painters,
                                                .paintings_per_painter = 5,
                                                .movements = 3,
                                                .seed = 9})
      .access(AccessStructureKind::IndexedGuidedTour)
      .weave()
      .serve();
}

std::unique_ptr<nav::Engine> deep_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 3,
                                                .seed = 9})
      .access(AccessStructureKind::IndexedGuidedTour, "painter-0")
      .weave()
      .serve();
}

void BM_EmitDataDocuments(benchmark::State& state) {
  auto engine = wide_engine(static_cast<std::size_t>(state.range(0)));
  std::size_t files = 0, bytes = 0;
  for (auto _ : state) {
    auto artifacts = engine->world().data_artifacts();
    files = artifacts.size();
    bytes = 0;
    for (const auto& [path, content] : artifacts) bytes += content.size();
    benchmark::DoNotOptimize(artifacts);
  }
  state.counters["files"] = static_cast<double>(files);
  state.counters["bytes"] = static_cast<double>(bytes);
}

void BM_EmitLinkbase(benchmark::State& state) {
  auto engine = deep_engine(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto doc = navsep::core::build_linkbase(engine->structure());
    std::string text = navsep::xml::write(*doc, {.pretty = true});
    bytes = text.size();
    benchmark::DoNotOptimize(text);
  }
  state.counters["linkbase_bytes"] = static_cast<double>(bytes);
}

void BM_ConsumeLinkbase(benchmark::State& state) {
  auto engine = deep_engine(static_cast<std::size_t>(state.range(0)));
  const std::string& text = *engine->site().get("links.xml");
  std::size_t arcs = 0;
  for (auto _ : state) {
    navsep::xml::ParseOptions opts;
    opts.base_uri = engine->server().uri_of("links.xml");
    auto doc = navsep::xml::parse(text, opts);
    auto graph = navsep::xlink::TraversalGraph::from_linkbase(*doc);
    arcs = graph.arcs().size();
    benchmark::DoNotOptimize(graph);
  }
  state.counters["arcs"] = static_cast<double>(arcs);
  state.counters["linkbase_bytes"] = static_cast<double>(text.size());
}

void BM_ResolveEndpoints(benchmark::State& state) {
  // Register every data document, then resolve each painting URI+fragment.
  auto engine = wide_engine(static_cast<std::size_t>(state.range(0)));
  std::vector<std::unique_ptr<navsep::xml::Document>> docs;
  navsep::xlink::DocumentRegistry registry;
  std::vector<std::string> targets;
  for (const std::string& pid : engine->world().painter_ids()) {
    navsep::xml::ParseOptions opts;
    opts.base_uri = engine->server().uri_of("data/" + pid + ".xml");
    auto doc = navsep::xml::parse(
        navsep::xml::write(*engine->world().painter_document(pid), {}), opts);
    registry.add(*doc);
    for (const navsep::xml::Element* painting :
         doc->root()->children_named("painting")) {
      targets.push_back(opts.base_uri + "#" +
                        std::string(*painting->attribute("id")));
    }
    docs.push_back(std::move(doc));
  }
  std::size_t resolved = 0;
  for (auto _ : state) {
    resolved = 0;
    for (const std::string& t : targets) {
      if (registry.resolve(t) != nullptr) ++resolved;
    }
    benchmark::DoNotOptimize(resolved);
  }
  state.counters["targets"] = static_cast<double>(targets.size());
  state.counters["resolved"] = static_cast<double>(resolved);
}

}  // namespace

BENCHMARK(BM_EmitDataDocuments)->Arg(3)->Arg(30)->Arg(100);
BENCHMARK(BM_EmitLinkbase)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_ConsumeLinkbase)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_ResolveEndpoints)->Arg(3)->Arg(10)->Arg(30);

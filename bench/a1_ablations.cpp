// A1 — ablations of the design choices DESIGN.md calls out.
//
//   BM_Woven_CacheOn / CacheOff — the weaver's match cache: with the cache
//       disabled every page composition re-matches every pointcut of every
//       aspect (the cost AspectJ pays at compile time, paid here per
//       dispatch).
//   BM_SaxCount vs BM_DomCount — streaming vs tree parsing for a
//       single-pass consumer over the museum data.
//   BM_AspectStack — dispatch cost as unrelated aspects accumulate
//       (navigation + personalization + trail + k no-op aspects).
#include <benchmark/benchmark.h>

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "core/personalization.hpp"
#include "core/renderer.hpp"
#include "core/trail.hpp"
#include "museum/museum.hpp"
#include "xml/parser.hpp"
#include "xml/sax.hpp"
#include "xml/serializer.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
using navsep::museum::MuseumWorld;

struct Fixture {
  std::unique_ptr<MuseumWorld> world;
  navsep::hypermedia::NavigationalModel nav;
  std::unique_ptr<navsep::hypermedia::AccessStructure> igt;
};

Fixture make_fixture(std::size_t paintings) {
  auto world = MuseumWorld::synthetic({.painters = 1,
                                       .paintings_per_painter = paintings,
                                       .movements = 2,
                                       .seed = 17});
  auto nav = world->derive_navigation();
  Fixture f{std::move(world), std::move(nav), nullptr};
  f.igt = f.world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                       f.nav, "painter-0");
  return f;
}

void run_woven(benchmark::State& state, bool cache) {
  Fixture f = make_fixture(30);
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      navsep::core::NavigationAspect::from_arcs(f.igt->arcs()));
  weaver.set_cache_enabled(cache);
  navsep::core::SeparatedComposer composer(weaver);
  const auto* node = f.nav.node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = composer.compose_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
}

void BM_Woven_CacheOn(benchmark::State& state) { run_woven(state, true); }
void BM_Woven_CacheOff(benchmark::State& state) { run_woven(state, false); }

void BM_AspectStack(benchmark::State& state) {
  Fixture f = make_fixture(30);
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      navsep::core::NavigationAspect::from_arcs(f.igt->arcs()));
  navsep::core::UserProfile profile;
  profile.greet = true;
  weaver.register_aspect(
      navsep::core::PersonalizationAspect::for_profile(profile));
  navsep::core::Trail trail;
  weaver.register_aspect(navsep::core::TrailAspect::create(trail));
  // Pile on k inert aspects whose pointcuts never match page composition.
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    auto noop = std::make_shared<navsep::aop::Aspect>(
        "noop-" + std::to_string(i));
    noop->before("traverse(never-matching-subject)",
                 [](navsep::aop::JoinPointContext&) {});
    weaver.register_aspect(noop);
  }
  navsep::core::SeparatedComposer composer(weaver);
  const auto* node = f.nav.node("painter-0-work-1");
  for (auto _ : state) {
    std::string page = composer.compose_node_page(*node);
    benchmark::DoNotOptimize(page);
  }
  state.counters["aspects"] = static_cast<double>(weaver.aspect_names().size());
}

std::string big_museum_xml(std::size_t painters) {
  auto world = MuseumWorld::synthetic({.painters = painters,
                                       .paintings_per_painter = 8,
                                       .movements = 4,
                                       .seed = 23});
  navsep::xml::Document doc;
  auto& root = doc.set_root(navsep::xml::QName("museum"));
  for (const std::string& pid : world->painter_ids()) {
    root.append(world->painter_document(pid)->root()->clone());
  }
  return navsep::xml::write(doc, {.pretty = true});
}

void BM_SaxCount(benchmark::State& state) {
  std::string text = big_museum_xml(static_cast<std::size_t>(state.range(0)));
  std::size_t elements = 0;
  for (auto _ : state) {
    navsep::xml::sax::CountingHandler h;
    navsep::xml::sax::parse(text, h);
    elements = h.elements;
    benchmark::DoNotOptimize(h);
  }
  state.counters["elements"] = static_cast<double>(elements);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_DomCount(benchmark::State& state) {
  std::string text = big_museum_xml(static_cast<std::size_t>(state.range(0)));
  std::size_t elements = 0;
  for (auto _ : state) {
    auto doc = navsep::xml::parse(text);
    elements = 0;
    doc->root()->walk([&](const navsep::xml::Element&) { ++elements; });
    benchmark::DoNotOptimize(doc);
  }
  state.counters["elements"] = static_cast<double>(elements);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

}  // namespace

BENCHMARK(BM_Woven_CacheOn);
BENCHMARK(BM_Woven_CacheOff);
BENCHMARK(BM_AspectStack)->Arg(0)->Arg(8)->Arg(32);
BENCHMARK(BM_SaxCount)->Arg(50)->Arg(200);
BENCHMARK(BM_DomCount)->Arg(50)->Arg(200);

// F1 — Figure 1 (the AOP mechanism) as a microbenchmark.
//
// The figure shows concern sources entering a weaver and one program
// coming out. Here we decompose the runtime cost of that mechanism:
//
//   BM_JoinPointNoAspects   — announcing a join point with nothing woven
//   BM_PointcutParse        — compiling the DSL
//   BM_PointcutMatch        — one uncached match of a composite pointcut
//   BM_WeaverCachedDispatch — the steady-state: cache hit + advice call
//   BM_AroundChain/depth    — nested around advice (proceed() chains)
//
// Expected shape: dispatch is dominated by the uncached match; the cache
// reduces steady-state weaving to a map lookup plus the advice bodies.
#include <benchmark/benchmark.h>

#include <memory>

#include "aop/weaver.hpp"

namespace {

using namespace navsep::aop;

JoinPoint compose_jp() {
  JoinPoint jp;
  jp.kind = JoinPointKind::PageCompose;
  jp.subject = "PaintingNode";
  jp.instance = "guernica";
  jp.tags.emplace("context", "ByAuthor:picasso");
  return jp;
}

void BM_JoinPointNoAspects(benchmark::State& state) {
  Weaver weaver;
  JoinPoint jp = compose_jp();
  int sink = 0;
  for (auto _ : state) {
    weaver.execute(jp, [&] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_JoinPointNoAspects);

void BM_PointcutParse(benchmark::State& state) {
  for (auto _ : state) {
    Pointcut pc = Pointcut::parse(
        "compose(Painting*) && within(ByAuthor:*) || traverse(*, guernica)");
    benchmark::DoNotOptimize(pc);
  }
}
BENCHMARK(BM_PointcutParse);

void BM_PointcutMatch(benchmark::State& state) {
  Pointcut pc = Pointcut::parse(
      "compose(Painting*) && within(ByAuthor:*) || traverse(*, guernica)");
  JoinPoint jp = compose_jp();
  for (auto _ : state) {
    bool hit = pc.matches(jp);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PointcutMatch);

void BM_WeaverCachedDispatch(benchmark::State& state) {
  Weaver weaver;
  auto aspect = std::make_shared<Aspect>("nav");
  int sink = 0;
  aspect->after("compose(*)", [&](JoinPointContext&) { ++sink; });
  weaver.register_aspect(aspect);
  JoinPoint jp = compose_jp();
  weaver.execute(jp, [] {});  // warm the cache
  for (auto _ : state) {
    weaver.execute(jp, [] {});
  }
  benchmark::DoNotOptimize(sink);
  state.counters["cache_hit_rate"] =
      static_cast<double>(weaver.stats().match_cache_hits) /
      static_cast<double>(weaver.stats().join_points_executed);
}
BENCHMARK(BM_WeaverCachedDispatch);

void BM_AroundChain(benchmark::State& state) {
  Weaver weaver;
  const int depth = static_cast<int>(state.range(0));
  int sink = 0;
  for (int i = 0; i < depth; ++i) {
    auto aspect = std::make_shared<Aspect>("a" + std::to_string(i), i);
    aspect->around("custom(*)", [&](JoinPointContext& ctx) {
      ++sink;
      ctx.proceed();
    });
    weaver.register_aspect(aspect);
  }
  JoinPoint jp;
  jp.kind = JoinPointKind::Custom;
  jp.subject = "x";
  for (auto _ : state) {
    weaver.execute(jp, [&] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AroundChain)->Arg(1)->Arg(4)->Arg(16);

void BM_MatchUncached(benchmark::State& state) {
  // Distinct instances defeat the cache: measures compute_match per shape.
  Weaver weaver;
  auto aspect = std::make_shared<Aspect>("nav");
  aspect->after("compose(Paint*) && within(By*)",
                [](JoinPointContext&) {});
  weaver.register_aspect(aspect);
  std::uint64_t n = 0;
  for (auto _ : state) {
    JoinPoint jp = compose_jp();
    jp.instance = "node-" + std::to_string(n++);
    weaver.execute(jp, [] {});
  }
  state.counters["cache_miss_rate"] =
      static_cast<double>(weaver.stats().match_cache_misses) /
      static_cast<double>(weaver.stats().join_points_executed);
}
BENCHMARK(BM_MatchUncached);

}  // namespace

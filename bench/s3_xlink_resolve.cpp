// S3 — XLink substrate soundness: traversal-graph queries at linkbase
// scale.
#include <benchmark/benchmark.h>

#include "core/linkbase.hpp"
#include "museum/museum.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;

navsep::xlink::TraversalGraph graph_of(std::size_t paintings) {
  auto world = navsep::museum::MuseumWorld::synthetic(
      {.painters = 1,
       .paintings_per_painter = paintings,
       .movements = 3,
       .seed = 8});
  auto nav = world->derive_navigation();
  auto igt = world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                        nav, "painter-0");
  navsep::core::LinkbaseOptions lb;
  lb.base_uri = "http://museum.example/site/links.xml";
  auto doc = navsep::core::build_linkbase(*igt, lb);
  return navsep::core::load_linkbase(*doc);
}

void BM_OutgoingLookup(benchmark::State& state) {
  auto graph = graph_of(static_cast<std::size_t>(state.range(0)));
  auto uris = graph.resource_uris();
  std::size_t i = 0;
  std::size_t arcs = 0;
  for (auto _ : state) {
    auto out = graph.outgoing(uris[i % uris.size()]);
    arcs = out.size();
    ++i;
    benchmark::DoNotOptimize(out);
  }
  state.counters["total_arcs"] = static_cast<double>(graph.arcs().size());
  state.counters["last_outgoing"] = static_cast<double>(arcs);
}

void BM_RoleFilteredLookup(benchmark::State& state) {
  auto graph = graph_of(static_cast<std::size_t>(state.range(0)));
  auto uris = graph.resource_uris();
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = graph.outgoing_with_role(uris[i % uris.size()], "nav:next");
    ++i;
    benchmark::DoNotOptimize(out);
  }
}

void BM_GraphConstruction(benchmark::State& state) {
  auto world = navsep::museum::MuseumWorld::synthetic(
      {.painters = 1,
       .paintings_per_painter = static_cast<std::size_t>(state.range(0)),
       .movements = 3,
       .seed = 8});
  auto nav = world->derive_navigation();
  auto igt = world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                        nav, "painter-0");
  navsep::core::LinkbaseOptions lb;
  lb.base_uri = "http://museum.example/site/links.xml";
  auto doc = navsep::core::build_linkbase(*igt, lb);
  for (auto _ : state) {
    auto graph = navsep::core::load_linkbase(*doc);
    benchmark::DoNotOptimize(graph);
  }
}

void BM_GraphMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto a = graph_of(n);
    auto b = graph_of(n);
    state.ResumeTiming();
    a.merge(std::move(b));
    benchmark::DoNotOptimize(a);
  }
}

}  // namespace

BENCHMARK(BM_OutgoingLookup)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_RoleFilteredLookup)->Arg(10)->Arg(100);
BENCHMARK(BM_GraphConstruction)->Arg(10)->Arg(100);
BENCHMARK(BM_GraphMerge)->Arg(100);

// E5 — profile-scoped navigation overlays under multi-audience traffic.
//
// E4 measured many readers over ONE published site state; this
// experiment adds the personalization dimension the paper's separation
// pays for: P registered nav::Profiles multiply the served navigation
// space (every page now has one navigation block per profile) while base
// pages stay woven once per epoch. The sweep crosses
// profiles × museum size × threads: K ProfileMix sessions fetch through
// ConcurrentServer::get(uri, profile), so every request exercises the
// per-(profile, page) overlay cache layer.
//
// After each traffic run the driver performs ONE context-family edit and
// re-probes every (profile, page) pair, reporting the invalidation
// asymmetry the design promises: zero base pages re-woven
// (RebuildReport.pages_rewoven), and only the entries of profiles that
// include the edited family re-render (overlay_stale_renders vs
// overlay_hits).
//
// Self-contained driver (no google-benchmark): emits BENCH_e5.json, one
// record per sweep cell.
//
//   e5_profile_overlays [--quick] [--out PATH]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/workload.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;

struct Cell {
  std::size_t profiles = 1;
  std::size_t paintings = 16;
  std::size_t threads = 1;
};

struct Record {
  Cell cell;
  serve::WorkloadResult result;
  serve::ConcurrentServer::Stats after_traffic;
  // The family-edit invalidation probe.
  std::size_t edit_pages_rewoven = 0;
  std::size_t edit_linkbases_reauthored = 0;
  std::size_t reprobe_hits = 0;           ///< entries that survived the edit
  std::size_t reprobe_stale_renders = 0;  ///< entries the edit retired
};

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 4,
                                                .paintings_per_painter =
                                                    paintings / 4 + 1,
                                                .movements = 3,
                                                .seed = 42})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// Register `count` profiles cycling the four canonical family subsets.
std::vector<nav::Profile> register_profiles(nav::Engine& engine,
                                            std::size_t count) {
  static const std::vector<std::vector<std::string>> kSubsets{
      {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"}, {}};
  std::vector<nav::Profile> out;
  for (std::size_t i = 0; i < count; ++i) {
    nav::Profile profile{"profile-" + std::to_string(i),
                         kSubsets[i % kSubsets.size()]};
    engine.internals().register_profile(profile);
    out.push_back(std::move(profile));
  }
  return out;
}

Record run_cell(const Cell& cell, std::size_t steps_per_session) {
  Record record;
  record.cell = cell;

  auto engine = museum_engine(cell.paintings);
  const std::vector<nav::Profile> profiles =
      register_profiles(*engine, cell.profiles);
  serve::Workload workload(*engine);
  auto server = engine->open_concurrent();

  serve::WorkloadOptions options;
  options.threads = cell.threads;
  options.steps_per_session = steps_per_session;
  options.behaviors = {serve::Behavior::ProfileMix};
  record.result = workload.run(*server, options);
  record.after_traffic = server->stats();

  // Warm every (profile, page) pair so the invalidation probe below
  // measures the full overlay space, not whatever traffic happened
  // to touch.
  std::vector<std::string> pages;
  for (const std::string& path : engine->site().paths()) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      pages.push_back(path);
    }
  }
  for (const nav::Profile& profile : profiles) {
    for (const std::string& page : pages) {
      (void)server->get(page, profile.name);
    }
  }
  const serve::ConcurrentServer::Stats warmed = server->stats();

  // One family edit; the asymmetry counters.
  nav::RebuildReport report = engine->internals().edit_context_family(
      "ByAuthor", [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        if (contexts.empty() || contexts.front().size() < 2) return;
        std::vector<std::string> ids = contexts.front().node_ids();
        std::rotate(ids.begin(), ids.begin() + 1, ids.end());
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
  record.edit_pages_rewoven = report.pages_rewoven;
  record.edit_linkbases_reauthored = report.linkbases_reauthored;

  for (const nav::Profile& profile : profiles) {
    for (const std::string& page : pages) {
      (void)server->get(page, profile.name);
    }
  }
  const serve::ConcurrentServer::Stats reprobed = server->stats();
  record.reprobe_hits = reprobed.overlay_hits - warmed.overlay_hits;
  record.reprobe_stale_renders =
      reprobed.overlay_stale_renders - warmed.overlay_stale_renders;
  return record;
}

void emit_json(const std::vector<Record>& records, std::ostream& out) {
  out << "{\n  \"bench\": \"e5_profile_overlays\",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    const serve::WorkloadResult& w = r.result;
    char buffer[64];
    out << "    {\n";
    out << "      \"profiles\": " << r.cell.profiles << ",\n";
    out << "      \"paintings\": " << r.cell.paintings << ",\n";
    out << "      \"threads\": " << r.cell.threads << ",\n";
    out << "      \"sessions\": " << w.sessions << ",\n";
    out << "      \"requests\": " << w.requests << ",\n";
    out << "      \"failures\": " << w.failures << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.6f", w.seconds);
    out << "      \"seconds\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", w.throughput_rps);
    out << "      \"throughput_rps\": " << buffer << ",\n";
    std::snprintf(buffer, sizeof(buffer), "%.1f", w.latency.mean_ns());
    out << "      \"latency_mean_ns\": " << buffer << ",\n";
    out << "      \"latency_p50_ns\": " << w.latency.quantile_ns(0.5)
        << ",\n";
    out << "      \"latency_p99_ns\": " << w.latency.quantile_ns(0.99)
        << ",\n";
    out << "      \"latency_max_ns\": " << w.latency.max_ns() << ",\n";
    out << "      \"overlay_requests\": " << r.after_traffic.overlay_requests
        << ",\n";
    out << "      \"overlay_hits\": " << r.after_traffic.overlay_hits
        << ",\n";
    out << "      \"overlay_renders\": " << r.after_traffic.overlay_renders
        << ",\n";
    out << "      \"overlay_entries\": " << r.after_traffic.overlay_entries
        << ",\n";
    out << "      \"edit_pages_rewoven\": " << r.edit_pages_rewoven << ",\n";
    out << "      \"edit_linkbases_reauthored\": "
        << r.edit_linkbases_reauthored << ",\n";
    out << "      \"reprobe_hits\": " << r.reprobe_hits << ",\n";
    out << "      \"reprobe_stale_renders\": " << r.reprobe_stale_renders
        << "\n";
    out << "    }" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_e5.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: e5_profile_overlays [--quick] [--out PATH]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> profile_counts =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::vector<std::size_t> museum_sizes =
      quick ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 128};
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  const std::size_t steps = quick ? 64 : 2048;

  std::vector<Record> records;
  for (std::size_t paintings : museum_sizes) {
    for (std::size_t profiles : profile_counts) {
      for (std::size_t threads : thread_counts) {
        Record r = run_cell(Cell{profiles, paintings, threads}, steps);
        std::printf(
            "profiles=%zu paintings=%zu threads=%zu -> %.0f req/s "
            "(p99 %llu ns, %zu overlay entries; edit: %zu pages rewoven, "
            "%zu entries retired, %zu survived)\n",
            r.cell.profiles, r.cell.paintings, r.cell.threads,
            r.result.throughput_rps,
            static_cast<unsigned long long>(r.result.latency.quantile_ns(0.99)),
            r.after_traffic.overlay_entries, r.edit_pages_rewoven,
            r.reprobe_stale_renders, r.reprobe_hits);
        records.push_back(std::move(r));
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  emit_json(records, out);
  std::cout << "wrote " << out_path << " (" << records.size() << " runs)\n";
  return 0;
}

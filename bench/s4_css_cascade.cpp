// S4 — CSS substrate soundness: selector matching and cascade on woven
// museum pages.
#include <benchmark/benchmark.h>

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "css/css.hpp"
#include "html/html.hpp"
#include "museum/museum.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;

navsep::html::Page woven_page(std::size_t paintings) {
  auto world = navsep::museum::MuseumWorld::synthetic(
      {.painters = 1,
       .paintings_per_painter = paintings,
       .movements = 2,
       .seed = 6});
  auto nav = world->derive_navigation();
  auto igt = world->paintings_structure(AccessStructureKind::IndexedGuidedTour,
                                        nav, "painter-0");
  navsep::aop::Weaver weaver;
  weaver.register_aspect(navsep::core::NavigationAspect::from_arcs(
      igt->arcs()));
  navsep::core::SeparatedComposer composer(weaver);
  // The structure page grows with the context — good cascade stress.
  return composer.compose_structure_dom(igt->page_id(), igt->name());
}

navsep::css::StyleResolver museum_resolver() {
  navsep::css::StyleResolver resolver;
  resolver.add_sheet(navsep::css::parse("body { color: black; }"),
                     navsep::css::Origin::UserAgent);
  resolver.add_sheet(
      navsep::css::parse(navsep::museum::MuseumWorld::site_css()));
  resolver.add_sheet(navsep::css::parse(R"(
    .navigation a { color: navy; text-decoration: none; }
    .nav-index li { margin: 2px; }
    .nav-index a.nav-entry { font-weight: normal !important; }
    h1, h2 { font-family: Garamond; }
  )"));
  return resolver;
}

void BM_StylesheetParse(benchmark::State& state) {
  std::string css = navsep::museum::MuseumWorld::site_css();
  for (auto _ : state) {
    auto sheet = navsep::css::parse(css);
    benchmark::DoNotOptimize(sheet);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(css.size()));
}

void BM_ComputedProperty(benchmark::State& state) {
  navsep::html::Page page = woven_page(static_cast<std::size_t>(state.range(0)));
  auto resolver = museum_resolver();
  std::vector<const navsep::xml::Element*> anchors;
  page.document().root()->walk([&](const navsep::xml::Element& e) {
    if (e.name().local == "a") anchors.push_back(&e);
  });
  std::size_t i = 0;
  for (auto _ : state) {
    auto v = resolver.computed(*anchors[i % anchors.size()], "color");
    ++i;
    benchmark::DoNotOptimize(v);
  }
  state.counters["anchors"] = static_cast<double>(anchors.size());
}

void BM_FullPageStyle(benchmark::State& state) {
  navsep::html::Page page = woven_page(static_cast<std::size_t>(state.range(0)));
  auto resolver = museum_resolver();
  std::size_t props = 0;
  for (auto _ : state) {
    props = 0;
    page.document().root()->walk([&](const navsep::xml::Element& e) {
      props += resolver.computed_style(e).size();
    });
    benchmark::DoNotOptimize(props);
  }
  state.counters["computed_properties"] = static_cast<double>(props);
}

}  // namespace

BENCHMARK(BM_StylesheetParse);
BENCHMARK(BM_ComputedProperty)->Arg(10)->Arg(100);
BENCHMARK(BM_FullPageStyle)->Arg(10)->Arg(50);

// F2 — Figure 2: the Index and Indexed Guided Tour access structures.
//
// Regenerates the figure's two link graphs over a paintings context of N
// members and reports their arc populations:
//
//   Index             — star:  2N arcs (N entries + N ups)
//   GuidedTour        — chain: 2(N-1) arcs (next+prev)
//   IndexedGuidedTour — star + chain: 2N + 2(N-1) arcs
//   Menu              — two-level index over sqrt(N) sub-indexes
//
// Fixtures come out of nav::SitePipeline (the canonical way to get from a
// conceptual model to a structure); the measured operation is pure arc
// materialization. Expected shape: all linear in N; IGT ≈ Index +
// GuidedTour.
#include <benchmark/benchmark.h>

#include "nav/pipeline.hpp"

namespace {

using namespace navsep::hypermedia;
namespace nav = navsep::nav;

std::unique_ptr<nav::Engine> engine_of(std::size_t n,
                                       AccessStructureKind kind) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                .paintings_per_painter = n,
                                                .movements = 2,
                                                .seed = 11})
      .access(kind, "painter-0")
      .weave()
      .serve();
}

void run(benchmark::State& state, AccessStructureKind kind) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto engine = engine_of(n, kind);
  const AccessStructure& structure = engine->structure();
  std::size_t arc_count = 0;
  for (auto _ : state) {
    auto arcs = structure.arcs();
    arc_count = arcs.size();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["arcs"] = static_cast<double>(arc_count);
  state.counters["members"] = static_cast<double>(n);
}

void BM_Index(benchmark::State& state) {
  run(state, AccessStructureKind::Index);
}
void BM_GuidedTour(benchmark::State& state) {
  run(state, AccessStructureKind::GuidedTour);
}
void BM_IndexedGuidedTour(benchmark::State& state) {
  run(state, AccessStructureKind::IndexedGuidedTour);
}

std::vector<Member> members(std::size_t n) {
  std::vector<Member> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Member{"painting-" + std::to_string(i),
                         "Painting #" + std::to_string(i)});
  }
  return out;
}

// Menu needs sub-structures, which the pipeline's kind factory does not
// produce — built directly.
void BM_Menu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t groups = std::max<std::size_t>(1, n / 10);
  std::vector<std::unique_ptr<AccessStructure>> subs;
  for (std::size_t g = 0; g < groups; ++g) {
    subs.push_back(std::make_unique<Index>("group-" + std::to_string(g),
                                           members(n / groups)));
  }
  Menu menu("museum", std::move(subs));
  std::size_t arc_count = 0;
  for (auto _ : state) {
    auto arcs = menu.arcs();
    arc_count = arcs.size();
    benchmark::DoNotOptimize(arcs);
  }
  state.counters["arcs"] = static_cast<double>(arc_count);
}

}  // namespace

BENCHMARK(BM_Index)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_GuidedTour)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_IndexedGuidedTour)->Arg(3)->Arg(30)->Arg(300);
BENCHMARK(BM_Menu)->Arg(30)->Arg(300);
